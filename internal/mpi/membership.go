package mpi

// Rank membership: the fabric's view of which ranks are still alive.
//
// The original transport treated the rank set as immutable — any link
// error tore the whole node down. Membership makes rank death a
// first-class, survivable event: each process marks the dead rank in its
// own live set (advancing a membership epoch), announces the death to the
// surviving peers with a frameRankDead so the fabric converges without
// every node waiting out its own timeout, and keeps the remaining links
// running. Detection is two-fold: a write or read error on a link kills
// that peer immediately (a SIGKILLed process resets its connections), and
// heartbeat frames paired with per-read deadlines bound the detection
// time on links that are idle through a long compute phase.
//
// Quorum: rank 0 hosts the RMA windows and coordinates the cross-process
// barrier, so a worker that loses its link to rank 0 has lost the run —
// that one death still tears the node down, with the *RankDeadError as
// the cause. Everything else degrades: sends to dead ranks fail fast,
// worlds created after a death plan around the shrunken live set, and
// worlds open at death time fail their blocking operations with a
// *RankDeadError so the executor can re-plan the dead rank's share.

import (
	"errors"
	"fmt"
	"time"
)

// Default heartbeat cadence. The timeout is the read deadline armed
// before every frame read; it must comfortably exceed the interval so a
// healthy-but-busy peer is never declared dead. Cluster.SetHeartbeat
// overrides both (zero disables the corresponding half).
const (
	defaultHeartbeatInterval = 1 * time.Second
	defaultHeartbeatTimeout  = 10 * time.Second
)

// RankDeadError reports an operation that failed because a peer rank was
// declared dead. Match with errors.As; Err carries the detection cause
// (link error, heartbeat timeout, or a peer's death notice).
type RankDeadError struct {
	Rank int
	Err  error
}

func (e *RankDeadError) Error() string { return fmt.Sprintf("mpi: rank %d dead: %v", e.Rank, e.Err) }
func (e *RankDeadError) Unwrap() error { return e.Err }

// RankDeath is one membership loss: which rank died, when this process
// declared it dead, and why.
type RankDeath struct {
	Rank  int
	At    time.Time
	Cause error
}

// alive reports whether rank r is live in this node's membership view.
func (n *tcpNode) alive(r int) bool {
	if r < 0 || r >= n.n {
		return false
	}
	n.memMu.Lock()
	ok := n.deadRank[r] == nil
	n.memMu.Unlock()
	return ok
}

// deadErr returns the typed death error for rank r, or nil while it is
// live.
func (n *tcpNode) deadErr(r int) *RankDeadError {
	if r < 0 || r >= n.n {
		return nil
	}
	n.memMu.Lock()
	cause := n.deadRank[r]
	n.memMu.Unlock()
	if cause == nil {
		return nil
	}
	return &RankDeadError{Rank: r, Err: cause}
}

// liveRanks returns the live rank ids in ascending order.
func (n *tcpNode) liveRanks() []int {
	n.memMu.Lock()
	out := make([]int, 0, n.liveN)
	for r, cause := range n.deadRank {
		if cause == nil {
			out = append(out, r)
		}
	}
	n.memMu.Unlock()
	return out
}

// deadRanks returns the chronological record of rank deaths this process
// has declared.
func (n *tcpNode) deadRanks() []RankDeath {
	n.memMu.Lock()
	out := append([]RankDeath(nil), n.deaths...)
	n.memMu.Unlock()
	return out
}

// rankDied folds one peer's death into the membership view. The first
// declaration wins: the rank is marked dead, the membership epoch
// advances, its link is closed so the reader drains out, surviving peers
// hear a frameRankDead, and every open world is notified so blocked
// operations unwind with a *RankDeadError. A worker losing rank 0 is
// quorum loss — the barrier coordinator and window host are gone — so
// that one death still tears the whole node down.
func (n *tcpNode) rankDied(rank int, cause error) {
	if rank < 0 || rank >= n.n || rank == n.rank || n.closed.Load() {
		return
	}
	if cause == nil {
		cause = errors.New("rank declared dead")
	}
	n.memMu.Lock()
	if n.deadRank[rank] != nil {
		n.memMu.Unlock()
		return
	}
	n.deadRank[rank] = cause
	n.liveN--
	n.deaths = append(n.deaths, RankDeath{Rank: rank, At: time.Now(), Cause: cause})
	n.memMu.Unlock()
	n.memEpoch.Add(1)
	if p := n.peers[rank]; p != nil {
		p.conn.Close()
	}
	if rank == 0 && n.rank != 0 {
		n.teardown(&RankDeadError{Rank: 0, Err: cause})
		return
	}
	n.announceDeath(rank, cause)
	n.mu.Lock()
	worlds := make([]*World, 0, len(n.worlds))
	for _, w := range n.worlds {
		worlds = append(worlds, w)
	}
	n.mu.Unlock()
	for _, w := range worlds {
		w.noteRankDead(rank, cause)
	}
}

// announceDeath tells the surviving peers about a death. Send failures
// feed back into rankDied for that peer, so a cascade of deaths settles
// in at most n rounds.
func (n *tcpNode) announceDeath(rank int, cause error) {
	text := cause.Error()
	if len(text) > maxCauseLen {
		text = text[:maxCauseLen]
	}
	for r, p := range n.peers {
		if p == nil || r == rank || !n.alive(r) {
			continue
		}
		_, _ = n.sendCtrl(r, frame{kind: frameRankDead, rank: int32(rank), cause: text})
	}
}

// startHeartbeats runs the keepalive sender for the node's lifetime:
// one frameHeartbeat to every live peer per interval. Paired with the
// read deadline each reader arms per frame, a silent peer is declared
// dead within the heartbeat timeout.
func (n *tcpNode) startHeartbeats() {
	if n.n <= 1 {
		return
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTimer(time.Hour)
		defer t.Stop()
		beat := func() {
			for r, p := range n.peers {
				if p == nil || !n.alive(r) {
					continue
				}
				_, _ = n.sendCtrl(r, frame{kind: frameHeartbeat, rank: int32(n.rank)})
			}
		}
		for {
			// The interval is re-read every beat so SetHeartbeat takes
			// effect on the next one; zero pauses sending without stopping
			// the loop. A kick (SetHeartbeat) applies a new cadence
			// immediately — one beat now, then the new interval — so a peer
			// that just armed a short read deadline sees traffic right away
			// instead of after the stale timer runs out.
			iv := time.Duration(n.hbInterval.Load())
			send := iv > 0
			if iv <= 0 {
				iv = defaultHeartbeatInterval
			}
			if !t.Stop() {
				select {
				case <-t.C:
				default:
				}
			}
			t.Reset(iv)
			select {
			case <-n.hbStop:
				return
			case <-n.hbKick:
				if time.Duration(n.hbInterval.Load()) > 0 {
					beat()
				}
				continue
			case <-t.C:
			}
			if !send {
				continue
			}
			beat()
		}
	}()
}

// Membership state on a World. Wire worlds distinguish ranks that were
// already dead when the world was minted (bornDead: the world simply
// plans around them — collectives run over the survivors) from a death
// that happened while the world was open (failure: partial collective
// state cannot be trusted, so blocking operations fail fast with the
// *RankDeadError and the caller re-plans on a fresh world). In-process
// worlds never populate any of this — every membership check short-
// circuits on MultiProcess, keeping the shared-memory fast path
// allocation-free and byte-identical to the pre-membership runtime.

// noteRankDead records a death that happened while this world was open:
// blocked receives wake and fail with the *RankDeadError, and the barrier
// coordinator re-evaluates pending tallies against the shrunken live set
// so barriers complete over the survivors.
func (w *World) noteRankDead(rank int, cause error) {
	w.memMu.Lock()
	if w.dead == nil {
		w.dead = make([]error, w.n)
	}
	if w.dead[rank] != nil {
		w.memMu.Unlock()
		return
	}
	w.dead[rank] = cause
	w.deadN++
	w.memMu.Unlock()
	w.failure.CompareAndSwap(nil, &RankDeadError{Rank: rank, Err: cause})
	for _, mb := range w.boxes {
		if mb == nil {
			continue
		}
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
	if w.cb != nil {
		w.cb.rankDied()
	}
}

// seedDead marks a rank that was already dead when the world was minted.
// Unlike noteRankDead it does not poison blocking operations: the world
// was created against the shrunken live set and completes over it.
func (w *World) seedDead(rank int, cause error) {
	w.memMu.Lock()
	if w.dead == nil {
		w.dead = make([]error, w.n)
	}
	if w.dead[rank] == nil {
		w.dead[rank] = cause
		w.deadN++
	}
	w.memMu.Unlock()
}

// Alive reports whether rank r is live in this world's membership view.
// In-process worlds are always fully live.
func (w *World) Alive(r int) bool {
	if r < 0 || r >= w.n {
		return false
	}
	if !w.MultiProcess() {
		return true
	}
	w.memMu.Lock()
	ok := w.dead == nil || w.dead[r] == nil
	w.memMu.Unlock()
	return ok
}

// LiveRanks returns the live rank ids in ascending order.
func (w *World) LiveRanks() []int {
	out := make([]int, 0, w.n)
	for r := 0; r < w.n; r++ {
		if w.Alive(r) {
			out = append(out, r)
		}
	}
	return out
}

// liveCount returns the number of live ranks.
func (w *World) liveCount() int {
	if !w.MultiProcess() {
		return w.n
	}
	w.memMu.Lock()
	live := w.n - w.deadN
	w.memMu.Unlock()
	return live
}

// deadCause returns the death cause for rank r, or nil while it is live.
func (w *World) deadCause(r int) error {
	if !w.MultiProcess() || r < 0 || r >= w.n {
		return nil
	}
	w.memMu.Lock()
	var cause error
	if w.dead != nil {
		cause = w.dead[r]
	}
	w.memMu.Unlock()
	return cause
}

// Failure returns the first rank death observed while this world was
// open, or nil. Worlds minted after a death (which merely plan around the
// shrunken live set) report nil.
func (w *World) Failure() error {
	if f := w.failure.Load(); f != nil {
		return f
	}
	return nil
}

// MembershipEpoch returns the cluster's membership epoch: it advances by
// one for every rank death this process has declared. Zero on in-process
// worlds.
func (w *World) MembershipEpoch() uint64 {
	if w.cl == nil || w.cl.tcp == nil {
		return 0
	}
	return w.cl.tcp.memEpoch.Load()
}

// Alive reports whether rank r is live in this communicator's world view
// (see World.Alive).
func (c *Comm) Alive(r int) bool { return c.world.Alive(r) }

// Failure returns the first rank death observed while this communicator's
// world was open, or nil (see World.Failure).
func (c *Comm) Failure() error { return c.world.Failure() }

// Alive reports whether rank r is live in the cluster's membership view.
// In-process clusters are always fully live.
func (cl *Cluster) Alive(r int) bool {
	if cl.tcp == nil {
		return r >= 0 && r < cl.n
	}
	return cl.tcp.alive(r)
}

// LiveRanks returns the live rank ids in ascending order.
func (cl *Cluster) LiveRanks() []int {
	if cl.tcp == nil {
		out := make([]int, cl.n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return cl.tcp.liveRanks()
}

// MembershipEpoch returns the cluster's membership epoch (see
// World.MembershipEpoch).
func (cl *Cluster) MembershipEpoch() uint64 {
	if cl.tcp == nil {
		return 0
	}
	return cl.tcp.memEpoch.Load()
}

// DeadRanks returns the chronological record of rank deaths this process
// has declared, each with its detection time and cause.
func (cl *Cluster) DeadRanks() []RankDeath {
	if cl.tcp == nil {
		return nil
	}
	return cl.tcp.deadRanks()
}

// SetHeartbeat overrides the keepalive cadence: interval is the
// heartbeat send period, timeout the per-read deadline that declares a
// silent peer dead. Zero disables the corresponding half. The interval
// takes effect on the next beat; the timeout applies to every subsequent
// frame read. No-op on in-process clusters.
func (cl *Cluster) SetHeartbeat(interval, timeout time.Duration) {
	if cl.tcp == nil {
		return
	}
	cl.tcp.hbInterval.Store(int64(interval))
	cl.tcp.hbTimeout.Store(int64(timeout))
	// Kick the sender so the new interval applies now, not after the
	// stale timer expires (the kick also fires an immediate beat).
	select {
	case cl.tcp.hbKick <- struct{}{}:
	default:
	}
	// Re-arm in-flight reads: SetReadDeadline takes effect on a blocked
	// Read, so the new timeout applies immediately instead of after the
	// next frame.
	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for _, p := range cl.tcp.peers {
		if p != nil {
			_ = p.conn.SetReadDeadline(deadline)
		}
	}
}
