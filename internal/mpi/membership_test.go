package mpi

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// loopback bootstraps an n-process loopback fabric and returns the
// cluster handles indexed by their assigned rank (LoopbackClusters
// returns them in creation order, but JoinTCP ranks are assigned in
// arrival order).
func loopbackByRank(t *testing.T, n int) []*Cluster {
	t.Helper()
	cls := loopback(t, n)
	byRank := make([]*Cluster, n)
	for _, cl := range cls {
		byRank[cl.Rank()] = cl
	}
	return byRank
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRankDeathMembership kills one worker of a 3-process loopback fabric
// and checks that the survivors' membership view converges: the dead rank
// drops out of the live set, the epoch advances, the death is recorded,
// and sends to it fail fast with the typed error.
func TestRankDeathMembership(t *testing.T) {
	ctx := context.Background()
	cls := loopbackByRank(t, 3)

	w0 := cls[0].NewWorld()
	w1 := cls[1].NewWorld()
	_ = cls[2].NewWorld()

	if got := len(cls[0].LiveRanks()); got != 3 {
		t.Fatalf("live ranks before death: %d, want 3", got)
	}
	if cls[0].MembershipEpoch() != 0 {
		t.Fatalf("membership epoch before death: %d, want 0", cls[0].MembershipEpoch())
	}

	// SIGKILL stand-in: the process vanishes, its connections reset.
	cls[2].Close()

	waitFor(t, "rank 0 to declare rank 2 dead", func() bool { return !cls[0].Alive(2) })
	waitFor(t, "rank 1 to declare rank 2 dead", func() bool { return !cls[1].Alive(2) })

	if cls[0].MembershipEpoch() == 0 {
		t.Error("membership epoch did not advance on death")
	}
	deaths := cls[0].DeadRanks()
	if len(deaths) != 1 || deaths[0].Rank != 2 || deaths[0].Cause == nil || deaths[0].At.IsZero() {
		t.Errorf("death record = %+v, want one entry for rank 2 with cause and time", deaths)
	}
	if live := cls[0].LiveRanks(); len(live) != 2 || live[0] != 0 || live[1] != 1 {
		t.Errorf("live ranks = %v, want [0 1]", live)
	}

	// The open worlds observed the death: Failure reports it, and sends to
	// the dead rank fail fast with *RankDeadError.
	waitFor(t, "world 0 to observe the failure", func() bool { return w0.Failure() != nil })
	var rde *RankDeadError
	if !errors.As(w0.Failure(), &rde) || rde.Rank != 2 {
		t.Errorf("world failure = %v, want RankDeadError for rank 2", w0.Failure())
	}
	err := w0.RunCtx(ctx, func(c *Comm) error {
		sendErr := c.Send(2, 7, []byte("hi"))
		var de *RankDeadError
		if !errors.As(sendErr, &de) || de.Rank != 2 {
			t.Errorf("send to dead rank: %v, want RankDeadError for rank 2", sendErr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = w1
}

// TestBarrierOverSurvivors opens a world on every process, kills one
// worker, and checks the cross-process barrier still completes for the
// survivors — the coordinator re-tallies against the shrunken live set.
func TestBarrierOverSurvivors(t *testing.T) {
	ctx := context.Background()
	cls := loopbackByRank(t, 3)

	w0 := cls[0].NewWorld()
	w1 := cls[1].NewWorld()
	_ = cls[2].NewWorld()

	cls[2].Close()
	waitFor(t, "survivors to notice the death", func() bool {
		return !cls[0].Alive(2) && !cls[1].Alive(2)
	})

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, w := range []*World{w0, w1} {
		wg.Add(1)
		go func(i int, w *World) {
			defer wg.Done()
			errs[i] = w.RunCtx(ctx, func(c *Comm) error { return c.Barrier() })
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("survivor %d barrier: %v", i, err)
		}
	}
}

// TestCollectivesOverSurvivors mints fresh worlds after a death (the
// recovery path's re-plan step) and checks Allreduce, Bcast, Gather and
// Barrier all complete over the two survivors of a 3-rank fabric.
func TestCollectivesOverSurvivors(t *testing.T) {
	ctx := context.Background()
	cls := loopbackByRank(t, 3)

	cls[2].Close()
	waitFor(t, "survivors to notice the death", func() bool {
		return !cls[0].Alive(2) && !cls[1].Alive(2)
	})

	w0 := cls[0].NewWorld()
	w1 := cls[1].NewWorld()
	if w0.Failure() != nil {
		t.Fatalf("world minted after death reports failure %v, want nil (born-dead rank is planned around)", w0.Failure())
	}
	if w0.Alive(2) || w0.liveCount() != 2 {
		t.Fatalf("fresh world live view: alive(2)=%v liveCount=%d, want false/2", w0.Alive(2), w0.liveCount())
	}

	run := func(w *World, rank int, out *[]float64, errp *error) func() {
		return func() {
			*errp = w.RunCtx(ctx, func(c *Comm) error {
				v, err := c.Allreduce(ctx, 10, []float64{float64(rank + 1)}, OpSum)
				if err != nil {
					return err
				}
				*out = v
				b, err := c.Bcast(ctx, 0, 20, []byte{42})
				if err != nil {
					return err
				}
				if len(b) != 1 || b[0] != 42 {
					t.Errorf("rank %d bcast got %v", rank, b)
				}
				if _, err := c.Gather(ctx, 0, 30, []byte{byte(rank)}); err != nil {
					return err
				}
				return c.Barrier()
			})
		}
	}
	var wg sync.WaitGroup
	var v0, v1 []float64
	var e0, e1 error
	wg.Add(2)
	go func() { defer wg.Done(); run(w0, 0, &v0, &e0)() }()
	go func() { defer wg.Done(); run(w1, 1, &v1, &e1)() }()
	wg.Wait()
	if e0 != nil || e1 != nil {
		t.Fatalf("survivor collectives failed: rank0=%v rank1=%v", e0, e1)
	}
	// Sum over survivors only: 1 + 2.
	if len(v0) != 1 || v0[0] != 3 || len(v1) != 1 || v1[0] != 3 {
		t.Errorf("allreduce over survivors = %v / %v, want [3]", v0, v1)
	}
}

// TestRecvFromDeadRankFails checks a blocking receive aimed at a dead
// rank returns the typed error instead of hanging.
func TestRecvFromDeadRankFails(t *testing.T) {
	ctx := context.Background()
	cls := loopbackByRank(t, 3)

	cls[2].Close()
	waitFor(t, "rank 0 to notice the death", func() bool { return !cls[0].Alive(2) })

	w0 := cls[0].NewWorld()
	_ = cls[1].NewWorld()
	err := w0.RunCtx(ctx, func(c *Comm) error {
		_, _, _, recvErr := c.Recv(ctx, 2, 5)
		var de *RankDeadError
		if !errors.As(recvErr, &de) || de.Rank != 2 {
			t.Errorf("recv from dead rank: %v, want RankDeadError for rank 2", recvErr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRootDeathIsQuorumLoss kills rank 0 and checks the worker tears all
// the way down — the barrier coordinator and window host are gone — with
// the rank-0 death as the world's close cause.
func TestRootDeathIsQuorumLoss(t *testing.T) {
	cls := loopbackByRank(t, 2)

	w1 := cls[1].NewWorld()
	_ = cls[0].NewWorld()
	cls[0].Close()

	waitFor(t, "worker world to close on root death", func() bool { return w1.Err() != nil })
	var de *RankDeadError
	if !errors.As(w1.Err(), &de) || de.Rank != 0 {
		t.Errorf("worker close cause = %v, want RankDeadError for rank 0", w1.Err())
	}
	if !errors.Is(w1.Err(), ErrWorldClosed) {
		t.Errorf("worker close cause does not match ErrWorldClosed: %v", w1.Err())
	}
}

// TestHeartbeatTimeoutDetectsSilentPeer freezes one peer (heartbeats off,
// connection left open) and checks the read deadline declares it dead
// without any link-level error.
func TestHeartbeatTimeoutDetectsSilentPeer(t *testing.T) {
	cls := loopbackByRank(t, 2)

	// Rank 1 goes silent: no heartbeats, no deadline of its own (so it
	// never declares rank 0 dead first). Rank 0 beats fast and expects
	// traffic within 300ms.
	cls[1].SetHeartbeat(0, 0)
	cls[0].SetHeartbeat(20*time.Millisecond, 300*time.Millisecond)

	waitFor(t, "rank 0 to declare the silent rank 1 dead", func() bool { return !cls[0].Alive(1) })
	deaths := cls[0].DeadRanks()
	if len(deaths) != 1 || deaths[0].Rank != 1 {
		t.Fatalf("death record = %+v, want one entry for rank 1", deaths)
	}
}

// TestDeathNoticePropagation checks a frameRankDead from a peer folds
// into the local membership view: rank 1 learns of rank 2's death from
// rank 0's announcement even if its own link to rank 2 stays quiet.
func TestDeathNoticePropagation(t *testing.T) {
	cls := loopbackByRank(t, 3)
	defer cls[2].Close()

	// Only rank 0 watches for silence; ranks 1 and 2 never time out on
	// their own, so rank 1 can only learn of 2's death from the notice.
	cls[0].SetHeartbeat(20*time.Millisecond, 300*time.Millisecond)
	cls[1].SetHeartbeat(20*time.Millisecond, 0)
	cls[2].SetHeartbeat(0, 0)

	waitFor(t, "rank 0 to declare rank 2 dead", func() bool { return !cls[0].Alive(2) })
	waitFor(t, "rank 1 to hear the death notice", func() bool { return !cls[1].Alive(2) })
}
