// Package mpi is an in-process message-passing runtime with the shape of
// the MPI subset the paper uses: ranks with point-to-point Send/Recv,
// barriers, gather, and one-sided remote-memory-access windows (MPI_Put /
// MPI_Get on an MPI_Win) for the load-balancing work-estimate table. Ranks
// run as goroutines in one address space; semantics (rank addressing, tag
// matching, window atomicity) match the distributed original, so the
// meshing and load-balancing code is written exactly as it would be
// against real MPI. Message and byte counters feed the performance model
// that stands in for the paper's Infiniband cluster.
//
// Failures propagate as errors rather than crashes: sends to invalid ranks
// return ErrInvalidRank, blocking receives accept a context and return an
// error matching ErrWorldClosed when the world is torn down mid-wait, and
// a rank that fails inside RunCtx surfaces as a *RankError after the
// remaining ranks have been unblocked.
package mpi

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"pamg2d/internal/trace"
)

// AnySource matches messages from any rank.
const AnySource = -1

// AnyTag matches any message tag.
const AnyTag = -1

var (
	// ErrWorldClosed reports a blocking operation cut short because the
	// world was torn down (a peer failure, cancellation, or Close). Match
	// with errors.Is; the returned error wraps the teardown cause.
	ErrWorldClosed = errors.New("mpi: world closed")
	// ErrInvalidRank reports a send addressed outside [0, Size).
	ErrInvalidRank = errors.New("mpi: invalid rank")
)

// RankError attributes a failure to the rank it occurred on; RunCtx wraps
// rank panics and returned errors in it so callers can report which worker
// failed instead of losing the whole process.
type RankError struct {
	Rank int
	Err  error
}

func (e *RankError) Error() string { return fmt.Sprintf("mpi: rank %d: %v", e.Rank, e.Err) }
func (e *RankError) Unwrap() error { return e.Err }

// closedError carries the teardown cause while matching ErrWorldClosed.
type closedError struct{ cause error }

func (e *closedError) Error() string        { return "mpi: world closed: " + e.cause.Error() }
func (e *closedError) Unwrap() error        { return e.cause }
func (e *closedError) Is(target error) bool { return target == ErrWorldClosed }

// Stats counts traffic for the performance model.
type Stats struct {
	Messages atomic.Int64
	Bytes    atomic.Int64
	Puts     atomic.Int64
	Gets     atomic.Int64
}

type message struct {
	from, tag int
	data      []byte
	// ref is the zero-copy fast path: when ranks share one address space
	// a payload can travel by reference instead of through serialized
	// bytes. Exactly one of data/ref is set; the byte count that would
	// have crossed a real wire is accounted at send time either way.
	ref any
}

// releasePayload returns a dropped message's pooled payload to the pools.
// Ownership passed to the receiver at send time; when the world closes
// before the receive happens, the runtime is the payload's last owner and
// must release it so cancellation does not leak pooled buffers.
func releasePayload(m *message) {
	if m.data != nil {
		PutBytes(m.data)
		return
	}
	switch r := m.ref.(type) {
	case []byte:
		PutBytes(r)
	case []float64:
		PutFloats(r)
	}
}

// msgQueue is a FIFO with an amortized-O(1) head pop: consumed entries
// advance head and the slice is compacted once half-empty, so draining
// thousands of queued messages does not degrade to quadratic copying.
type msgQueue struct {
	msgs []message
	head int
}

func (q *msgQueue) empty() bool { return q.head >= len(q.msgs) }

func (q *msgQueue) push(m message) { q.msgs = append(q.msgs, m) }

// removeAt deletes the element at absolute index i (>= head).
func (q *msgQueue) removeAt(i int) message {
	m := q.msgs[i]
	if i == q.head {
		q.msgs[i] = message{}
		q.head++
		if q.head > len(q.msgs)/2 && q.head > 32 {
			q.msgs = append(q.msgs[:0], q.msgs[q.head:]...)
			q.head = 0
		}
		return m
	}
	q.msgs = append(q.msgs[:i], q.msgs[i+1:]...)
	return m
}

type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	tags   map[int]*msgQueue // per-tag FIFOs preserve per-source ordering
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{tags: make(map[int]*msgQueue)}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// match finds the first message matching (from, tag) and removes it.
func (mb *mailbox) match(from, tag int) (message, bool) {
	scan := func(q *msgQueue) (message, bool) {
		for i := q.head; i < len(q.msgs); i++ {
			if from == AnySource || q.msgs[i].from == from {
				return q.removeAt(i), true
			}
		}
		return message{}, false
	}
	if tag != AnyTag {
		if q, ok := mb.tags[tag]; ok {
			return scan(q)
		}
		return message{}, false
	}
	for _, q := range mb.tags {
		if m, ok := scan(q); ok {
			return m, true
		}
	}
	return message{}, false
}

// World is a communicator spanning n ranks. A world minted by NewWorld
// hosts every rank in this process; one minted by Cluster.NewWorld over a
// wire transport hosts exactly one (boxes has a single non-nil entry) and
// routes the rest through the cluster.
type World struct {
	n       int
	boxes   []*mailbox
	stats   *Stats
	barrier *barrier // in-process n-party barrier; nil for wire worlds
	tracer  *trace.Tracer

	cl       *Cluster  // nil for classic NewWorld worlds
	epoch    uint64    // cluster-wide world sequence number
	cb       *cbarrier // cross-process barrier; wire worlds only
	closedCh chan struct{}

	closeMu    sync.Mutex
	closeCause error // write-once, guarded by closeMu before closed is set
	closed     atomic.Bool

	// Membership (wire worlds only; see membership.go): dead[r] holds the
	// death cause once rank r is gone, deadN counts them, failure is the
	// first death observed after the world was minted. In-process worlds
	// never touch any of this.
	memMu   sync.Mutex
	dead    []error
	deadN   int
	failure atomic.Pointer[RankDeadError]

	windows struct {
		mu      sync.Mutex
		list    []*Window
		pending []pendItem // wire ops for windows not yet created here
	}
}

// NewWorld creates a communicator with n ranks.
func NewWorld(n int) *World {
	if n < 1 {
		n = 1
	}
	w := &World{n: n, stats: &Stats{}, barrier: newBarrier(n)}
	w.boxes = make([]*mailbox, n)
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w
}

// Stats returns the world's traffic counters.
func (w *World) Stats() *Stats { return w.stats }

// SetTracer attaches a span tracer: every successful send is recorded as
// a rank-attributed instant event carrying destination, tag, and wire
// bytes (real frame sizes for wire transports, serialized-equivalent
// sizes for the in-process backend). An enabled tracer also stamps the
// comm track with a "transport/<name>" instant so exported traces name
// the backend. A nil tracer (the default) disables recording; the send
// path then pays a single nil check. Set before the first Run — the
// field is not synchronized against in-flight sends.
func (w *World) SetTracer(tr *trace.Tracer) {
	w.tracer = tr
	if tr.Enabled() {
		tr.Instant(w.LocalRank(), trace.CatMPI, "transport/"+w.TransportName())
	}
}

// TransportName identifies the backend carrying this world's traffic.
func (w *World) TransportName() string {
	if w.cl != nil {
		return w.cl.TransportName()
	}
	return "inproc"
}

// MultiProcess reports whether this world's ranks span more than one OS
// process — i.e. whether peers can only be reached over a wire. Code
// relying on shared memory between ranks (result collection without a
// redistribution step) must branch on this.
func (w *World) MultiProcess() bool {
	return w.cl != nil && w.cl.tcp != nil && w.n > 1
}

// LocalRank returns the rank this process hosts (0 when all ranks are
// local, which makes it the right track id for process-wide events).
func (w *World) LocalRank() int {
	if w.cl != nil {
		return w.cl.rank
	}
	return 0
}

// rankIsLocal reports whether rank r lives in this process.
func (w *World) rankIsLocal(r int) bool { return w.cl == nil || w.cl.isLocal(r) }

// Close tears the world down: every blocked receive and barrier returns an
// error matching ErrWorldClosed (wrapping cause), queued messages are
// dropped with their pooled payloads released back to the pools, and later
// sends fail. The first Close wins; subsequent calls are no-ops. RunCtx
// calls Close automatically when a rank fails or the context is canceled.
func (w *World) Close(cause error) { w.closeWith(cause, true) }

// closeWith implements Close. notifyPeers distinguishes a locally
// initiated teardown (which must be broadcast so every process of a wire
// world unwinds) from one applied on behalf of a peer or the transport
// (which must not echo back).
func (w *World) closeWith(cause error, notifyPeers bool) {
	w.closeMu.Lock()
	if w.closed.Load() {
		w.closeMu.Unlock()
		return
	}
	if cause == nil {
		cause = ErrWorldClosed
	}
	w.closeCause = cause
	w.closed.Store(true)
	w.closeMu.Unlock()
	for _, mb := range w.boxes {
		if mb == nil {
			continue
		}
		mb.mu.Lock()
		mb.closed = true
		for _, q := range mb.tags {
			for i := q.head; i < len(q.msgs); i++ {
				releasePayload(&q.msgs[i])
				q.msgs[i] = message{}
			}
			q.head = len(q.msgs)
		}
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
	if w.barrier != nil {
		w.barrier.close()
	}
	if w.cb != nil {
		w.cb.close()
	}
	if w.closedCh != nil {
		close(w.closedCh)
	}
	if notifyPeers && w.MultiProcess() {
		rank := int32(-1)
		text := cause.Error()
		var re *RankError
		if errors.As(cause, &re) {
			rank = int32(re.Rank)
			text = re.Err.Error()
		}
		w.cl.tcp.broadcastCtrl(frame{kind: frameWorldClose, epoch: w.epoch, rank: rank, cause: text})
	}
}

// Err returns an error matching ErrWorldClosed (wrapping the teardown
// cause) once the world is closed, and nil while it is open.
func (w *World) Err() error {
	if !w.closed.Load() {
		return nil
	}
	// closeCause is written before the atomic store of closed, so the load
	// above orders this read.
	if w.closeCause == ErrWorldClosed {
		return ErrWorldClosed
	}
	return &closedError{cause: w.closeCause}
}

// Run spawns fn on every rank and waits for all to finish. A panic in any
// rank is captured, tears the world down so the other ranks unblock, and
// is returned as a *RankError after all ranks complete.
func (w *World) Run(fn func(c *Comm)) error {
	return w.RunCtx(context.Background(), func(c *Comm) error {
		fn(c)
		return nil
	})
}

// RunCtx spawns fn on every rank and waits for all to finish. When ctx is
// canceled, or any rank returns an error or panics, the world is closed so
// blocked peers unwind, and the root cause is returned: the context's
// cause on cancellation, otherwise a *RankError naming the failed rank. A
// world that runs to completion stays open and may be reused for further
// Run calls (the pipeline's result-drain pass relies on this).
func (w *World) RunCtx(ctx context.Context, fn func(c *Comm) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() { w.Close(context.Cause(ctx)) })
		defer stop()
	}
	var wg sync.WaitGroup
	errs := make([]error, w.n)
	// A wire world hosts a single rank here; its peers run fn in their own
	// processes under the SPMD contract. In-process worlds spawn them all.
	lo, hi := 0, w.n
	if w.MultiProcess() {
		lo = w.cl.rank
		hi = lo + 1
	}
	for r := lo; r < hi; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					re := &RankError{Rank: rank, Err: fmt.Errorf("panic: %v", p)}
					errs[rank] = re
					w.Close(re)
				}
			}()
			if err := fn(&Comm{world: w, rank: rank}); err != nil {
				re := &RankError{Rank: rank, Err: err}
				errs[rank] = re
				w.Close(re)
			}
		}(r)
	}
	wg.Wait()
	if w.closed.Load() {
		// The close cause is the chronologically first failure; ranks that
		// merely observed the teardown are not the root cause.
		return w.closeCause
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Run is shorthand for NewWorld(n).Run(fn).
func Run(n int, fn func(c *Comm)) error {
	return NewWorld(n).Run(fn)
}

// Comm is one rank's handle on the world.
type Comm struct {
	world *World
	rank  int
}

// Rank returns the caller's rank id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.world.n }

// World returns the underlying world (for stats access in drivers).
func (c *Comm) World() *World { return c.world }

// Err reports the world's teardown cause, or nil while it is open. Polling
// loops (the load balancer's communicator) use it to notice cancellation
// without blocking.
func (c *Comm) Err() error { return c.world.Err() }

// send routes m to rank `to` — straight into the local mailbox when the
// rank lives here (the zero-copy path, untouched), through the cluster
// transport otherwise — and accounts wire bytes on success: the
// serialized-equivalent size in-process, the real frame size on a wire.
// On error the payload is NOT consumed: ownership stays with the caller,
// which must release pooled buffers itself.
func (c *Comm) send(to, tag int, m message, wire int) error {
	if to < 0 || to >= c.world.n {
		return fmt.Errorf("%w: send to rank %d of %d", ErrInvalidRank, to, c.world.n)
	}
	if !c.world.rankIsLocal(to) {
		nw, err := c.world.cl.tcp.sendMessage(c.world, to, m)
		if err != nil {
			return err
		}
		wire = nw
	} else {
		mb := c.world.boxes[to]
		mb.mu.Lock()
		if mb.closed {
			mb.mu.Unlock()
			return c.world.Err()
		}
		q := mb.tags[tag]
		if q == nil {
			q = &msgQueue{}
			mb.tags[tag] = q
		}
		q.push(m)
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
	st := c.world.stats
	st.Messages.Add(1)
	st.Bytes.Add(int64(wire))
	if c.world.tracer.Enabled() {
		c.world.tracer.Instant(c.rank, trace.CatMPI, "send",
			trace.I("to", to), trace.I("tag", tag), trace.I("bytes", wire))
	}
	return nil
}

// deliverRemote enqueues a message that arrived over the wire into the
// locally hosted rank's mailbox. Messages for a closed (or non-local)
// destination are dropped with their pooled payloads released, exactly as
// Close does for queued messages.
func (w *World) deliverRemote(to int, m message) {
	var mb *mailbox
	if to >= 0 && to < len(w.boxes) {
		mb = w.boxes[to]
	}
	if mb == nil {
		releasePayload(&m)
		return
	}
	mb.mu.Lock()
	if mb.closed {
		mb.mu.Unlock()
		releasePayload(&m)
		return
	}
	q := mb.tags[m.tag]
	if q == nil {
		q = &msgQueue{}
		mb.tags[m.tag] = q
	}
	q.push(m)
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// Send delivers data to rank `to` with the given tag. Like MPI's eager
// protocol it does not block. The data slice is not copied; on success
// ownership passes to the receiver and senders must not mutate it
// afterwards. It returns ErrInvalidRank for an out-of-range destination
// and an ErrWorldClosed-matching error after teardown; on error the caller
// keeps ownership of data.
func (c *Comm) Send(to, tag int, data []byte) error {
	return c.send(to, tag, message{from: c.rank, tag: tag, data: data}, len(data))
}

// SendRef delivers an in-address-space payload by reference — the
// zero-copy fast path for ranks that are goroutines in one process. No
// bytes are copied or even materialized; wireBytes is the size the
// serialized payload would occupy on a real interconnect and is what the
// stats counters record, so the communication-volume accounting is
// byte-for-byte identical to sending the encoded form with Send.
// Ownership of ref passes to the receiver on success; on error (invalid
// rank, closed world) it stays with the caller.
func (c *Comm) SendRef(to, tag int, ref any, wireBytes int) error {
	return c.send(to, tag, message{from: c.rank, tag: tag, ref: ref}, wireBytes)
}

// recv blocks until a matching message arrives, the context is canceled,
// or the world is closed.
func (c *Comm) recv(ctx context.Context, from, tag int) (message, error) {
	mb := c.world.boxes[c.rank]
	if ctx != nil && ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			// Wake the waiter below so it can observe ctx.Err.
			mb.mu.Lock()
			mb.cond.Broadcast()
			mb.mu.Unlock()
		})
		defer stop()
	}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if m, ok := mb.match(from, tag); ok {
			return m, nil
		}
		if mb.closed {
			return message{}, c.world.Err()
		}
		// A death makes a blocking wait hopeless: a specific source that
		// is dead will never send again, and after a mid-world death an
		// AnySource wait cannot tell live stragglers from lost messages —
		// fail with the typed error so the caller can re-plan. Queued
		// messages still drain first (the match above runs every pass).
		if c.world.MultiProcess() {
			if from >= 0 {
				if cause := c.world.deadCause(from); cause != nil {
					return message{}, &RankDeadError{Rank: from, Err: cause}
				}
			} else if f := c.world.failure.Load(); f != nil {
				return message{}, f
			}
		}
		if ctx != nil && ctx.Done() != nil {
			if ctx.Err() != nil {
				return message{}, context.Cause(ctx)
			}
		}
		mb.cond.Wait()
	}
}

// Recv blocks until a message matching (from, tag) arrives and returns its
// payload and envelope. Use AnySource and AnyTag as wildcards. The wait is
// cut short by ctx (returning the context's cause) or by world teardown
// (returning an error matching ErrWorldClosed).
func (c *Comm) Recv(ctx context.Context, from, tag int) (data []byte, srcRank, srcTag int, err error) {
	m, err := c.recv(ctx, from, tag)
	if err != nil {
		return nil, 0, 0, err
	}
	return m.data, m.from, m.tag, nil
}

// RecvRef blocks like Recv but returns the message's reference payload.
// For a message sent with Send it returns the byte slice as the ref, so a
// tag may mix both transports; callers type-switch on the result.
func (c *Comm) RecvRef(ctx context.Context, from, tag int) (ref any, srcRank, srcTag int, err error) {
	m, err := c.recv(ctx, from, tag)
	if err != nil {
		return nil, 0, 0, err
	}
	if m.ref != nil {
		return m.ref, m.from, m.tag, nil
	}
	return m.data, m.from, m.tag, nil
}

// TryRecv is a non-blocking probe-and-receive: ok is false when no
// matching message is queued (including after teardown, which drops all
// queued messages — poll Err to distinguish).
func (c *Comm) TryRecv(from, tag int) (data []byte, srcRank, srcTag int, ok bool) {
	mb := c.world.boxes[c.rank]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if m, ok := mb.match(from, tag); ok {
		return m.data, m.from, m.tag, true
	}
	return nil, 0, 0, false
}

// TryRecvRef is the non-blocking form of RecvRef.
func (c *Comm) TryRecvRef(from, tag int) (ref any, srcRank, srcTag int, ok bool) {
	mb := c.world.boxes[c.rank]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if m, ok := mb.match(from, tag); ok {
		if m.ref != nil {
			return m.ref, m.from, m.tag, true
		}
		return m.data, m.from, m.tag, true
	}
	return nil, 0, 0, false
}

// Barrier blocks until every rank has entered it, or returns an error
// matching ErrWorldClosed if the world is torn down while waiting. Wire
// worlds coordinate through rank 0's process; in-process worlds use the
// shared-memory barrier.
func (c *Comm) Barrier() error {
	if c.world.cb != nil {
		return c.world.cb.await()
	}
	if !c.world.barrier.await() {
		return c.world.Err()
	}
	return nil
}

// Gather sends each rank's data to the root, which receives them in rank
// order; non-root ranks return nil. This mirrors the paper's gather of
// boundary-layer point coordinates at the root. The root's wait honors
// ctx. The root expects one contribution per live rank, so a gather over
// a degraded world completes with the dead ranks' slots left nil.
func (c *Comm) Gather(ctx context.Context, root, tag int, data []byte) ([][]byte, error) {
	if c.rank != root {
		return nil, c.Send(root, tag, data)
	}
	out := make([][]byte, c.world.n)
	out[root] = data
	for i := 0; i < c.world.liveCount()-1; i++ {
		d, src, _, err := c.Recv(ctx, AnySource, tag)
		if err != nil {
			return nil, err
		}
		out[src] = d
	}
	return out, nil
}

// barrier is a reusable n-party barrier.
type barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	phase  int
	closed bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// await reports whether the barrier completed (false: torn down mid-wait).
func (b *barrier) await() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return false
	}
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		return true
	}
	for phase == b.phase && !b.closed {
		b.cond.Wait()
	}
	return phase != b.phase
}

// Window is a one-sided RMA window: an array of float64 slots hosted on a
// root rank, accessed with Put and Get from any rank. The paper stores
// per-process work-load estimates in such a window on the root and updates
// them from each rank's communicator thread. Over a wire transport the
// authoritative copy lives in rank 0's process: Put and Add from workers
// are fire-and-forget control frames; Get is a request/reply round trip
// that returns nil after teardown (pollers notice the cause via Err).
type Window struct {
	world *World
	idx   int  // position in the world's window list (wire addressing)
	host  bool // authoritative copy lives in this process
	mu    sync.Mutex
	data  []float64
}

// NewWindow allocates a window with `slots` float64 slots, hosted on rank
// 0's process. Under the SPMD contract every process creates the same
// windows in the same order; wire ops that raced ahead of this creation
// are parked on the world and applied here.
func (w *World) NewWindow(slots int) *Window {
	win := &Window{
		world: w,
		host:  !w.MultiProcess() || w.cl.rank == 0,
		data:  make([]float64, slots),
	}
	w.windows.mu.Lock()
	win.idx = len(w.windows.list)
	w.windows.list = append(w.windows.list, win)
	var ready []pendItem
	if len(w.windows.pending) > 0 {
		rest := w.windows.pending[:0]
		for _, it := range w.windows.pending {
			if it.win == win.idx {
				ready = append(ready, it)
			} else {
				rest = append(rest, it)
			}
		}
		w.windows.pending = rest
	}
	w.windows.mu.Unlock()
	for _, it := range ready {
		w.cl.tcp.apply(w, it)
	}
	return win
}

// windowAt resolves a wire op's window index, or parks the op until the
// local NewWindow call catches up.
func (w *World) windowAt(it pendItem) *Window {
	w.windows.mu.Lock()
	defer w.windows.mu.Unlock()
	if it.win < len(w.windows.list) {
		return w.windows.list[it.win]
	}
	if !w.closed.Load() {
		w.windows.pending = append(w.windows.pending, it)
	}
	return nil
}

// applyWinStore applies a remote Put (accumulate=false) or Add to the
// hosted copy.
func (w *World) applyWinStore(it pendItem, accumulate bool) {
	win := w.windowAt(it)
	if win == nil || it.slot >= len(win.data) {
		return
	}
	win.mu.Lock()
	if accumulate {
		win.data[it.slot] += it.val
	} else {
		win.data[it.slot] = it.val
	}
	win.mu.Unlock()
}

// applyWinGet answers a remote snapshot request from the hosted copy.
func (w *World) applyWinGet(it pendItem) {
	win := w.windowAt(it)
	if win == nil {
		return
	}
	win.mu.Lock()
	vals := make([]float64, len(win.data))
	copy(vals, win.data)
	win.mu.Unlock()
	_, _ = w.cl.tcp.sendCtrl(it.rank, frame{kind: frameWinGetReply, epoch: w.epoch, req: it.req, vals: vals})
}

// Put stores val into slot idx (MPI_Put).
func (win *Window) Put(idx int, val float64) {
	win.world.stats.Puts.Add(1)
	if !win.host {
		wire, _ := win.world.cl.tcp.sendCtrl(0, frame{
			kind: frameWinPut, epoch: win.world.epoch,
			win: int32(win.idx), slot: int32(idx), val: val,
		})
		win.world.stats.Bytes.Add(int64(wire))
		return
	}
	win.world.stats.Bytes.Add(8)
	win.mu.Lock()
	win.data[idx] = val
	win.mu.Unlock()
}

// Get returns a snapshot of all slots (MPI_Get of the whole window), or
// nil when a wire world was torn down before the reply arrived.
func (win *Window) Get() []float64 {
	win.world.stats.Gets.Add(1)
	if !win.host {
		vals, wire := win.world.cl.tcp.winGet(win.world, win.idx)
		win.world.stats.Bytes.Add(int64(wire + 8*len(vals)))
		return vals
	}
	win.world.stats.Bytes.Add(int64(8 * len(win.data)))
	win.mu.Lock()
	out := make([]float64, len(win.data))
	copy(out, win.data)
	win.mu.Unlock()
	return out
}

// Add atomically accumulates into a slot (MPI_Accumulate with MPI_SUM).
func (win *Window) Add(idx int, delta float64) {
	win.world.stats.Puts.Add(1)
	if !win.host {
		wire, _ := win.world.cl.tcp.sendCtrl(0, frame{
			kind: frameWinAdd, epoch: win.world.epoch,
			win: int32(win.idx), slot: int32(idx), val: delta,
		})
		win.world.stats.Bytes.Add(int64(wire))
		return
	}
	win.world.stats.Bytes.Add(8)
	win.mu.Lock()
	win.data[idx] += delta
	win.mu.Unlock()
}

// Encoding helpers for typed payloads.

// EncodeFloats packs a float64 slice little-endian.
func EncodeFloats(v []float64) []byte {
	out := make([]byte, 8*len(v))
	encodeFloatsInto(out, v)
	return out
}

func encodeFloatsInto(out []byte, v []float64) {
	for i, f := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(f))
	}
}

// DecodeFloats unpacks a payload written by EncodeFloats.
func DecodeFloats(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	decodeFloatsInto(out, b)
	return out
}

func decodeFloatsInto(out []float64, b []byte) {
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

// EncodeInts packs an int32 slice little-endian.
func EncodeInts(v []int32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(x))
	}
	return out
}

// DecodeInts unpacks a payload written by EncodeInts.
func DecodeInts(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}
