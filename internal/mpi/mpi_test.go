package mpi

import (
	"context"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSendRecvPair(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("hello"))
		} else {
			data, src, tag, err := c.Recv(context.Background(), 0, 7)
			if err != nil || string(data) != "hello" || src != 0 || tag != 7 {
				panic("bad message")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvWildcards(t *testing.T) {
	err := Run(4, func(c *Comm) {
		if c.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				data, src, _, _ := c.Recv(context.Background(), AnySource, AnyTag)
				if len(data) != 1 || int(data[0]) != src {
					panic("payload mismatch")
				}
				seen[src] = true
			}
			if len(seen) != 3 {
				panic("missing senders")
			}
		} else {
			c.Send(0, c.Rank(), []byte{byte(c.Rank())})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("one"))
			c.Send(1, 2, []byte("two"))
		} else {
			// Receive out of order by tag.
			d2, _, _, _ := c.Recv(context.Background(), 0, 2)
			d1, _, _, _ := c.Recv(context.Background(), 0, 1)
			if string(d2) != "two" || string(d1) != "one" {
				panic("tag matching failed")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTryRecv(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			if _, _, _, ok := c.TryRecv(AnySource, AnyTag); ok {
				panic("TryRecv must not find anything yet")
			}
			c.Barrier()
			c.Barrier()
			data, _, _, ok := c.TryRecv(1, 5)
			if !ok || string(data) != "x" {
				panic("TryRecv must find the queued message")
			}
		} else {
			c.Barrier()
			c.Send(0, 5, []byte("x"))
			c.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	var before, after atomic.Int32
	err := Run(8, func(c *Comm) {
		before.Add(1)
		c.Barrier()
		if before.Load() != 8 {
			panic("barrier released early")
		}
		after.Add(1)
		c.Barrier()
		if after.Load() != 8 {
			panic("second barrier released early")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	err := Run(5, func(c *Comm) {
		payload := EncodeFloats([]float64{float64(c.Rank()) * 1.5})
		got, err := c.Gather(context.Background(), 2, 9, payload)
		if err != nil {
			panic(err)
		}
		if c.Rank() != 2 {
			if got != nil {
				panic("non-root must get nil")
			}
			return
		}
		if len(got) != 5 {
			panic("root must collect all ranks")
		}
		for r, d := range got {
			v := DecodeFloats(d)
			if len(v) != 1 || v[0] != float64(r)*1.5 {
				panic("gather payload mismatch")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	err := Run(6, func(c *Comm) {
		var data []byte
		if c.Rank() == 3 {
			data = []byte("root-data")
		}
		got, err := c.Bcast(context.Background(), 3, 1, data)
		if err != nil || string(got) != "root-data" {
			panic("bcast payload mismatch")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWindowPutGet(t *testing.T) {
	w := NewWorld(4)
	win := w.NewWindow(4)
	err := w.Run(func(c *Comm) {
		win.Put(c.Rank(), float64(c.Rank())*10)
		c.Barrier()
		vals := win.Get()
		for r, v := range vals {
			if v != float64(r)*10 {
				panic("window value mismatch")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWindowAccumulate(t *testing.T) {
	w := NewWorld(8)
	win := w.NewWindow(1)
	err := w.Run(func(c *Comm) {
		for i := 0; i < 100; i++ {
			win.Add(0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := win.Get()[0]; got != 800 {
		t.Errorf("accumulate: got %v, want 800", got)
	}
}

func TestStatsCounting(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]byte, 100))
		} else {
			c.Recv(context.Background(), 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Messages.Load(); got != 1 {
		t.Errorf("messages = %d", got)
	}
	if got := w.Stats().Bytes.Load(); got != 100 {
		t.Errorf("bytes = %d", got)
	}
}

func TestPanicPropagates(t *testing.T) {
	err := Run(3, func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
	if err == nil {
		t.Fatal("rank panic must surface as an error")
	}
}

func TestEncodingRoundTrip(t *testing.T) {
	f := func(v []float64) bool {
		got := DecodeFloats(EncodeFloats(v))
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			// NaN compares unequal; compare bit patterns via re-encode.
			a, b := EncodeFloats(v[i:i+1]), EncodeFloats(got[i:i+1])
			for k := range a {
				if a[k] != b[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	g := func(v []int32) bool {
		got := DecodeInts(EncodeInts(v))
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestManyRanksPingPong(t *testing.T) {
	// Ring communication across 32 ranks.
	err := Run(32, func(c *Comm) {
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() + c.Size() - 1) % c.Size()
		c.Send(next, 0, []byte{byte(c.Rank())})
		data, src, _, _ := c.Recv(context.Background(), prev, 0)
		if int(data[0]) != prev || src != prev {
			panic("ring hop mismatch")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSendRecv(b *testing.B) {
	w := NewWorld(2)
	payload := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < b.N; i++ {
				c.Send(1, 0, payload)
			}
		} else {
			for i := 0; i < b.N; i++ {
				c.Recv(context.Background(), 0, 0)
			}
		}
	})
}

func BenchmarkWindowPut(b *testing.B) {
	w := NewWorld(1)
	win := w.NewWindow(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		win.Put(i%256, float64(i))
	}
}
