package mpi

// Pooled buffer management for the message fabric. Payload buffers are the
// dominant allocation of the in-process runtime: every task and every
// result used to round-trip through a freshly allocated byte slice. The
// pools below hand out power-of-two size classes backed by sync.Pool, with
// explicit release; a released buffer may be handed to a later caller, so
// the usual ownership rule applies — release only after the last reader is
// done with the message (for point-to-point transfers, ownership passes to
// the receiver).
//
// The slice headers themselves are recycled through a secondary pool
// (entryPool) so that a Get/encode/Put cycle performs zero heap
// allocations in steady state — the property BenchmarkPooledEncode
// asserts.

import (
	"sync"
	"sync/atomic"
)

// maxPoolClass bounds the pooled size classes: buffers above 2^maxPoolClass
// bytes (16 MiB) bypass the pool and fall back to the garbage collector.
const maxPoolClass = 24

// poolGets/poolPuts count pool-eligible checkouts and releases. In a
// leak-free program every pool-eligible Get is eventually matched by a Put
// once the buffer's last reader is done — including the teardown paths,
// where World.Close releases payloads still queued in mailboxes. Tests
// assert the balance around cancellation scenarios via PoolCounters.
var poolGets, poolPuts atomic.Int64

// PoolCounters reports the cumulative pool-eligible Get and Put totals.
// Intended for leak checks in tests: a scenario that checks buffers out
// and runs to quiescence (including error paths) must leave gets-puts
// unchanged.
func PoolCounters() (gets, puts int64) {
	return poolGets.Load(), poolPuts.Load()
}

// entry wraps a buffer so the pools traffic in pointers; storing slices
// directly in a sync.Pool would allocate a header on every Put.
type entry struct {
	b []byte
	f []float64
}

var entryPool = sync.Pool{New: func() any { return new(entry) }}

var (
	bytePools  [maxPoolClass + 1]sync.Pool
	floatPools [maxPoolClass + 1]sync.Pool
)

// classFor returns the smallest size class c with 1<<c >= n.
func classFor(n int) int {
	c := 0
	for 1<<c < n {
		c++
	}
	return c
}

// GetBytes returns a length-n byte slice from the pool. The contents are
// unspecified; callers overwrite before use. Release with PutBytes.
func GetBytes(n int) []byte {
	c := classFor(n)
	if c > maxPoolClass {
		return make([]byte, n)
	}
	poolGets.Add(1)
	if e, _ := bytePools[c].Get().(*entry); e != nil {
		b := e.b
		e.b = nil
		entryPool.Put(e)
		return b[:n]
	}
	return make([]byte, n, 1<<c)
}

// PutBytes releases a buffer obtained from GetBytes back to the pool.
// Buffers whose capacity is not a pooled size class (for example slices
// allocated elsewhere) are silently dropped, so PutBytes is safe to call
// on any message payload. The caller must not touch b afterwards.
func PutBytes(b []byte) {
	c := classFor(cap(b))
	if c > maxPoolClass || cap(b) != 1<<c || cap(b) == 0 {
		return
	}
	poolPuts.Add(1)
	e := entryPool.Get().(*entry)
	e.b = b[:cap(b)]
	bytePools[c].Put(e)
}

// GetFloats returns a length-n float64 slice from the pool; release with
// PutFloats.
func GetFloats(n int) []float64 {
	c := classFor(n)
	if c > maxPoolClass {
		return make([]float64, n)
	}
	poolGets.Add(1)
	if e, _ := floatPools[c].Get().(*entry); e != nil {
		f := e.f
		e.f = nil
		entryPool.Put(e)
		return f[:n]
	}
	return make([]float64, n, 1<<c)
}

// PutFloats releases a slice obtained from GetFloats back to the pool.
func PutFloats(v []float64) {
	c := classFor(cap(v))
	if c > maxPoolClass || cap(v) != 1<<c || cap(v) == 0 {
		return
	}
	poolPuts.Add(1)
	e := entryPool.Get().(*entry)
	e.f = v[:cap(v)]
	floatPools[c].Put(e)
}

// EncodeFloatsPooled packs a float64 slice little-endian into a pooled
// buffer. The wire format is identical to EncodeFloats; the only
// difference is the buffer's provenance. Release with PutBytes once the
// message's last reader is done.
func EncodeFloatsPooled(v []float64) []byte {
	out := GetBytes(8 * len(v))
	encodeFloatsInto(out, v)
	return out
}

// DecodeFloatsPooled unpacks a payload written by EncodeFloats or
// EncodeFloatsPooled into a pooled float64 slice. Release with PutFloats.
func DecodeFloatsPooled(b []byte) []float64 {
	out := GetFloats(len(b) / 8)
	decodeFloatsInto(out, b)
	return out
}
