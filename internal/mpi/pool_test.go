package mpi

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: the pooled encode/decode pair is byte-identical to the plain
// pair for arbitrary float vectors, including NaN payloads and both
// infinities, and the round trip reproduces every bit pattern.
func TestPooledEncodeDecodeRoundTrip(t *testing.T) {
	f := func(v []float64) bool {
		b := EncodeFloatsPooled(v)
		plain := EncodeFloats(v)
		if len(b) != len(plain) {
			return false
		}
		for i := range b {
			if b[i] != plain[i] {
				return false
			}
		}
		got := DecodeFloatsPooled(b)
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if math.Float64bits(got[i]) != math.Float64bits(v[i]) {
				return false
			}
		}
		PutFloats(got)
		PutBytes(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Edge cases quick.Check may not generate.
	for _, v := range [][]float64{nil, {}, {math.NaN()}, {math.Inf(1), math.Inf(-1), -0.0}} {
		b := EncodeFloatsPooled(v)
		got := DecodeFloatsPooled(b)
		if len(got) != len(v) {
			t.Fatalf("round trip of %v returned %v", v, got)
		}
		for i := range v {
			if math.Float64bits(got[i]) != math.Float64bits(v[i]) {
				t.Fatalf("bit pattern %x != %x", math.Float64bits(got[i]), math.Float64bits(v[i]))
			}
		}
		PutFloats(got)
		PutBytes(b)
	}
}

func TestGetBytesLengthAndClasses(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 1023, 1024, 1025, 1 << 20} {
		b := GetBytes(n)
		if len(b) != n {
			t.Fatalf("GetBytes(%d) has len %d", n, len(b))
		}
		PutBytes(b)
		f := GetFloats(n)
		if len(f) != n {
			t.Fatalf("GetFloats(%d) has len %d", n, len(f))
		}
		PutFloats(f)
	}
	// Oversized requests bypass the pool but must still work.
	big := GetBytes(1<<maxPoolClass + 1)
	if len(big) != 1<<maxPoolClass+1 {
		t.Fatal("oversized GetBytes wrong length")
	}
	PutBytes(big) // dropped, not pooled; must not panic
	// Foreign slices with non-class capacities are silently dropped.
	PutBytes(make([]byte, 100))
	PutFloats(make([]float64, 100))
}

// A released buffer must never be aliased by a message still in flight:
// ownership passes to the receiver, and only the receiver releases. Every
// sender fills its pooled buffer with a rank-specific pattern; the
// receiver verifies the pattern before releasing. Run under -race this
// also proves the pool introduces no unsynchronized reuse: a buffer that
// were recycled while still queued would be written by the next sender
// while the receiver reads it, which the pattern check and the race
// detector would both catch.
func TestReleasedBufferNotAliasedByLiveMessage(t *testing.T) {
	const ranks = 8
	const rounds = 200
	err := Run(ranks, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < (ranks-1)*rounds; i++ {
				d, src, _, _ := c.Recv(context.Background(), AnySource, 7)
				v := DecodeFloatsPooled(d)
				for k, x := range v {
					if want := float64(src*1000 + k); x != want {
						t.Errorf("message from %d slot %d: got %v want %v", src, k, x, want)
						break
					}
				}
				PutFloats(v)
				PutBytes(d) // receiver owns the buffer; release it here
			}
			return
		}
		rng := rand.New(rand.NewSource(int64(c.Rank())))
		for i := 0; i < rounds; i++ {
			n := 1 + rng.Intn(64)
			vals := GetFloats(n)
			for k := range vals {
				vals[k] = float64(c.Rank()*1000 + k)
			}
			c.Send(0, 7, EncodeFloatsPooled(vals))
			PutFloats(vals) // the floats were copied into the message; safe
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The pooled encode path must not allocate in steady state: buffer and
// slice headers are both recycled.
func BenchmarkPooledEncode(b *testing.B) {
	vals := make([]float64, 256)
	for i := range vals {
		vals[i] = float64(i) * 1.5
	}
	// Warm the pools so the steady state is measured.
	for i := 0; i < 16; i++ {
		PutBytes(EncodeFloatsPooled(vals))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := EncodeFloatsPooled(vals)
		PutBytes(buf)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		PutBytes(EncodeFloatsPooled(vals))
	}); allocs > 0 {
		b.Fatalf("pooled encode path allocates %v allocs/op, want 0", allocs)
	}
}

// SendRef must account exactly the bytes the serialized payload would
// occupy, keeping Messages and Bytes identical to the byte path.
func TestSendRefAccountingMatchesByteSend(t *testing.T) {
	payload := []float64{1, 2, 3, 4.5}
	wire := len(EncodeFloats(payload))

	byteWorld := NewWorld(2)
	if err := byteWorld.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 3, EncodeFloats(payload))
		} else {
			c.Recv(context.Background(), 0, 3)
		}
	}); err != nil {
		t.Fatal(err)
	}

	refWorld := NewWorld(2)
	if err := refWorld.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.SendRef(1, 3, payload, wire)
		} else {
			ref, _, _, _ := c.RecvRef(context.Background(), 0, 3)
			got := ref.([]float64)
			for i := range payload {
				if got[i] != payload[i] {
					t.Errorf("ref payload slot %d: %v != %v", i, got[i], payload[i])
				}
			}
		}
	}); err != nil {
		t.Fatal(err)
	}

	bm, bb := byteWorld.Stats().Messages.Load(), byteWorld.Stats().Bytes.Load()
	rm, rb := refWorld.Stats().Messages.Load(), refWorld.Stats().Bytes.Load()
	if bm != rm || bb != rb {
		t.Errorf("accounting differs: byte path %d msgs / %d bytes, ref path %d msgs / %d bytes",
			bm, bb, rm, rb)
	}
}

// A byte message received through RecvRef comes back as its []byte
// payload, so a tag can mix both transports.
func TestRecvRefReturnsBytesForByteMessages(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 9, []byte{42})
			return
		}
		ref, _, _, _ := c.RecvRef(context.Background(), 0, 9)
		b, ok := ref.([]byte)
		if !ok || len(b) != 1 || b[0] != 42 {
			t.Errorf("RecvRef of a byte message returned %v", ref)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
