package mpi

// TCP transport: one process per rank, a full mesh of connections between
// them, and the frame protocol from frame.go on every link.
//
// Bootstrap: the rank-0 process listens (AcceptTCP) and each worker dials
// it (JoinTCP), announcing its own listen address in a join handshake.
// Rank 0 assigns ranks in arrival order and replies with the rank, the
// cluster size, and the full peer address table. Workers then complete
// the mesh deterministically — rank i dials ranks 1..i-1 and accepts
// dial-ins from ranks i+1..n-1, with a peer handshake exchanging rank ids
// on each link — so every pair of processes shares exactly one
// connection whose single reader preserves FIFO delivery, the ordering
// guarantee the pipeline's result-drain pass relies on.
//
// Ownership over the wire: a successful send copies the payload into the
// frame buffer, after which the transport is the payload's last local
// owner and releases pooled buffers (the same "ownership passes on send"
// contract as the in-process backend). On the receiving side raw
// payloads and codec-decoded references arrive in pooled buffers that the
// receiver releases, so PoolCounters stays balanced per process.

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Handshake constants. The magic and version are checked on every link
// so a stray connection fails fast instead of corrupting a run.
const (
	hsMagic           = 0x504d4732 // "PMG2"
	hsVersion         = 1
	hsJoin       byte = 1
	hsWelcome    byte = 2
	hsPeer       byte = 3
	hsPeerOK     byte = 4
	maxHandshake      = 1 << 20
)

var errTransportClosed = errors.New("mpi: transport closed")

// pendItem is one decoded, fully-owned wire event parked for a world that
// does not exist locally yet (SPMD skew between processes).
type pendItem struct {
	kind  byte
	to    int
	msg   message
	win   int
	slot  int
	val   float64
	seq   uint64
	req   uint64
	rank  int
	cause string
}

type tcpPeer struct {
	conn net.Conn
	br   *bufio.Reader

	wmu    sync.Mutex
	wbuf   []byte // frame image scratch, reused per send
	encBuf []byte // codec encoding scratch, reused per ref send
}

// tcpNode is this process's endpoint: the peer links plus the epoch
// registry that pairs incoming frames with local worlds.
type tcpNode struct {
	rank, n int
	peers   []*tcpPeer // index = rank; nil at our own rank
	wg      sync.WaitGroup
	closed  atomic.Bool

	mu      sync.Mutex
	worlds  map[uint64]*World
	pending map[uint64][]pendItem

	// Membership view: deadRank[r] holds the death cause once rank r is
	// declared dead (nil while live), liveN counts survivors, deaths is
	// the chronological record, and memEpoch advances on every death.
	memMu    sync.Mutex
	deadRank []error
	deaths   []RankDeath
	liveN    int
	memEpoch atomic.Uint64

	// Heartbeat cadence (nanoseconds, read atomically so SetHeartbeat can
	// adjust a running node), the sender goroutine's stop signal, and the
	// kick SetHeartbeat uses to apply a new interval without waiting out
	// the old timer.
	hbInterval atomic.Int64
	hbTimeout  atomic.Int64
	hbStop     chan struct{}
	hbKick     chan struct{}

	getMu   sync.Mutex
	getReqs map[uint64]chan []float64
	reqSeq  atomic.Uint64

	// Clock-alignment state: nowFn is the monotonic clock the ping/pong
	// exchange reads on both sides (a tracer's Now when one is attached,
	// process-uptime nanoseconds otherwise); pings holds the in-flight
	// ping nonces awaiting a pong.
	nowFn   atomic.Pointer[func() int64]
	pingMu  sync.Mutex
	pings   map[uint64]chan int64
	pingSeq atomic.Uint64

	// Telemetry snapshots shipped by peers (rank 0 only in practice),
	// decoded and stored in arrival order until Cluster.Telemetry drains
	// them.
	telemMu sync.Mutex
	telem   []TelemetryItem
}

// processStart anchors the default clock the ping exchange reads when no
// tracer is attached; monotonic by time.Since's contract.
var processStart = time.Now()

// now reads the node's alignment clock.
func (n *tcpNode) now() int64 {
	if f := n.nowFn.Load(); f != nil {
		return (*f)()
	}
	return int64(time.Since(processStart))
}

func newTCPNode(rank, n int) *tcpNode {
	node := &tcpNode{
		rank:     rank,
		n:        n,
		peers:    make([]*tcpPeer, n),
		worlds:   make(map[uint64]*World),
		pending:  make(map[uint64][]pendItem),
		getReqs:  make(map[uint64]chan []float64),
		deadRank: make([]error, n),
		liveN:    n,
		hbStop:   make(chan struct{}),
		hbKick:   make(chan struct{}, 1),
	}
	node.hbInterval.Store(int64(defaultHeartbeatInterval))
	node.hbTimeout.Store(int64(defaultHeartbeatTimeout))
	return node
}

func (n *tcpNode) attach(rank int, conn net.Conn, br *bufio.Reader) {
	n.peers[rank] = &tcpPeer{conn: conn, br: br}
}

func (n *tcpNode) startReaders() {
	for r, p := range n.peers {
		if p == nil {
			continue
		}
		n.wg.Add(1)
		go n.reader(r, p)
	}
	n.startHeartbeats()
}

// reader drains one peer link for the node's lifetime. A read error or
// deadline expiry declares that one peer dead — membership shrinks, the
// other links keep running — rather than tearing the whole node down;
// quorum rules inside rankDied decide when a death is fatal. Each read is
// armed with the heartbeat timeout as its deadline, so a SIGKILLed or
// wedged peer is detected within one timeout even on an idle link.
func (n *tcpNode) reader(peer int, p *tcpPeer) {
	defer n.wg.Done()
	var scratch []byte
	for {
		if to := time.Duration(n.hbTimeout.Load()); to > 0 {
			_ = p.conn.SetReadDeadline(time.Now().Add(to))
		} else {
			_ = p.conn.SetReadDeadline(time.Time{})
		}
		f, s, err := readFrame(p.br, scratch)
		scratch = s
		if err != nil {
			if !n.closed.Load() {
				n.rankDied(peer, fmt.Errorf("mpi: link to rank %d failed: %w", peer, err))
			}
			return
		}
		if err := n.dispatch(f); err != nil {
			n.rankDied(peer, fmt.Errorf("mpi: protocol error from rank %d: %w", peer, err))
			return
		}
	}
}

// dispatch converts a decoded frame (whose payload views the reader's
// scratch) into a fully-owned event and routes it.
func (n *tcpNode) dispatch(f frame) error {
	switch f.kind {
	case frameMsg:
		if int(f.to) != n.rank {
			return fmt.Errorf("frame for rank %d delivered to rank %d", f.to, n.rank)
		}
		m := message{from: int(f.from), tag: int(f.tag)}
		if f.codec == codecNone {
			if len(f.payload) > 0 {
				m.data = GetBytes(len(f.payload))
				copy(m.data, f.payload)
			}
		} else {
			ref, err := decodeRef(f.codec, f.payload)
			if err != nil {
				return err
			}
			m.ref = ref
		}
		n.deliver(f.epoch, pendItem{kind: frameMsg, to: int(f.to), msg: m})
	case frameWinGetReply:
		n.getMu.Lock()
		ch := n.getReqs[f.req]
		delete(n.getReqs, f.req)
		n.getMu.Unlock()
		if ch != nil {
			ch <- f.vals
		}
	case framePing:
		// Echo our clock back to the sender immediately: the reply runs on
		// this reader goroutine, so the pong's remote-read happens as close
		// to the ping's arrival as the runtime allows.
		if int(f.rank) >= len(n.peers) || n.peers[f.rank] == nil {
			return fmt.Errorf("ping from unknown rank %d", f.rank)
		}
		_, _ = n.sendCtrl(int(f.rank), frame{kind: framePong, seq: f.seq, req: uint64(n.now())})
	case framePong:
		n.pingMu.Lock()
		ch := n.pings[f.seq]
		delete(n.pings, f.seq)
		n.pingMu.Unlock()
		if ch != nil {
			ch <- int64(f.req)
		}
	case frameTelemetry:
		ref, err := decodeRef(f.codec, f.payload)
		if err != nil {
			return err
		}
		n.telemMu.Lock()
		n.telem = append(n.telem, TelemetryItem{Rank: int(f.rank), Payload: ref})
		n.telemMu.Unlock()
	case frameHeartbeat:
		// Keepalive: its arrival already refreshed this link's read
		// deadline; nothing to route.
	case frameRankDead:
		if int(f.rank) == n.rank {
			// A peer believes we are dead (one-way partition). Our own
			// links decide our view; ignore the notice.
			return nil
		}
		n.rankDied(int(f.rank), fmt.Errorf("mpi: reported dead by a peer: %s", f.cause))
	case frameWorldClose, frameBarrierEnter, frameBarrierRelease, frameWinPut, frameWinAdd, frameWinGet:
		n.deliver(f.epoch, pendItem{
			kind: f.kind, win: int(f.win), slot: int(f.slot), val: f.val,
			seq: f.seq, req: f.req, rank: int(f.rank), cause: f.cause,
		})
	default:
		return fmt.Errorf("unroutable frame kind %d", f.kind)
	}
	return nil
}

// deliver hands the event to its world, or parks it until the matching
// NewWorld call happens in this process.
func (n *tcpNode) deliver(epoch uint64, it pendItem) {
	n.mu.Lock()
	w := n.worlds[epoch]
	if w == nil && !n.closed.Load() {
		n.pending[epoch] = append(n.pending[epoch], it)
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	if w == nil {
		discardItem(it)
		return
	}
	n.apply(w, it)
}

func (n *tcpNode) apply(w *World, it pendItem) {
	switch it.kind {
	case frameMsg:
		w.deliverRemote(it.to, it.msg)
	case frameWorldClose:
		w.closeWith(remoteCause(it.rank, it.cause), false)
	case frameBarrierEnter:
		w.cb.enter(it.seq)
	case frameBarrierRelease:
		w.cb.release(it.seq)
	case frameWinPut:
		w.applyWinStore(it, false)
	case frameWinAdd:
		w.applyWinStore(it, true)
	case frameWinGet:
		w.applyWinGet(it)
	}
}

func discardItem(it pendItem) {
	if it.kind == frameMsg {
		releasePayload(&it.msg)
	}
}

// register pairs a freshly minted world with its epoch and replays any
// frames that arrived ahead of it, in arrival order.
func (n *tcpNode) register(w *World) {
	n.mu.Lock()
	n.worlds[w.epoch] = w
	items := n.pending[w.epoch]
	delete(n.pending, w.epoch)
	dead := n.closed.Load()
	n.mu.Unlock()
	// Ranks that died before this world was minted are planned around,
	// not failures: the world completes over the surviving live set.
	n.memMu.Lock()
	for r, cause := range n.deadRank {
		if cause != nil {
			w.seedDead(r, cause)
		}
	}
	n.memMu.Unlock()
	for _, it := range items {
		n.apply(w, it)
	}
	if dead {
		w.closeWith(errTransportClosed, false)
	}
}

// remoteCause reconstructs a peer's teardown cause. The rank survives the
// wire so *RankError attribution works across processes; the error chain
// does not, so errors.Is against the original sentinel only holds in the
// process where the failure happened.
func remoteCause(rank int, text string) error {
	if text == "" {
		text = "peer closed world"
	}
	if rank >= 0 {
		return &RankError{Rank: rank, Err: errors.New(text)}
	}
	return errors.New(text)
}

// sendMessage ships a point-to-point message to the process hosting rank
// `to`, serializing reference payloads through the codec registry. On
// success the transport is the payload's last local owner and releases
// pooled buffers; on error ownership stays with the caller, matching the
// in-process contract. Returns the real frame size in bytes.
func (n *tcpNode) sendMessage(w *World, to int, m message) (int, error) {
	if n.closed.Load() || w.closed.Load() {
		return 0, worldOrTransportErr(w)
	}
	if de := n.deadErr(to); de != nil {
		return 0, de
	}
	p := n.peers[to]
	p.wmu.Lock()
	var codec CodecID
	payload := m.data
	if m.ref != nil {
		e := codecForRef(m.ref)
		if e == nil {
			p.wmu.Unlock()
			return 0, fmt.Errorf("mpi: no wire codec registered for payload type %T", m.ref)
		}
		p.encBuf = e.enc(m.ref, p.encBuf[:0])
		payload = p.encBuf
		codec = e.id
	}
	p.wbuf = appendFrame(p.wbuf[:0], frame{
		kind: frameMsg, epoch: w.epoch,
		from: int32(m.from), to: int32(to), tag: int32(m.tag),
		codec: codec, payload: payload,
	})
	wire := len(p.wbuf)
	_, err := p.conn.Write(p.wbuf)
	p.wmu.Unlock()
	if err != nil {
		n.rankDied(to, fmt.Errorf("mpi: write to rank %d failed: %w", to, err))
		if de := n.deadErr(to); de != nil {
			return 0, de
		}
		return 0, worldOrTransportErr(w)
	}
	releasePayload(&m)
	return wire, nil
}

func worldOrTransportErr(w *World) error {
	if err := w.Err(); err != nil {
		return err
	}
	return &closedError{cause: errTransportClosed}
}

// sendCtrl ships one control frame to the process hosting rank `to`.
// Sends to dead ranks fail fast with a *RankDeadError; a write error
// declares the peer dead.
func (n *tcpNode) sendCtrl(to int, f frame) (int, error) {
	if n.closed.Load() {
		return 0, errTransportClosed
	}
	if de := n.deadErr(to); de != nil {
		return 0, de
	}
	p := n.peers[to]
	p.wmu.Lock()
	p.wbuf = appendFrame(p.wbuf[:0], f)
	wire := len(p.wbuf)
	_, err := p.conn.Write(p.wbuf)
	p.wmu.Unlock()
	if err != nil {
		n.rankDied(to, fmt.Errorf("mpi: write to rank %d failed: %w", to, err))
		if de := n.deadErr(to); de != nil {
			return wire, de
		}
		return wire, err
	}
	return wire, nil
}

// broadcastCtrl ships one control frame to every live peer process. Link
// failures mid-broadcast shrink membership inside sendCtrl; the loop
// keeps going so surviving peers still hear the news.
func (n *tcpNode) broadcastCtrl(f frame) {
	for r, p := range n.peers {
		if p == nil || !n.alive(r) {
			continue
		}
		_, _ = n.sendCtrl(r, f)
	}
}

// winGet asks rank 0's process for a window snapshot and blocks for the
// reply. Returns nil when the world or transport is torn down mid-wait —
// pollers treat that as "no data" and notice the teardown via Err. The
// second result is the request's wire size for the stats counters.
func (n *tcpNode) winGet(w *World, win int) ([]float64, int) {
	if n.closed.Load() {
		return nil, 0
	}
	req := n.reqSeq.Add(1)
	ch := make(chan []float64, 1)
	n.getMu.Lock()
	n.getReqs[req] = ch
	n.getMu.Unlock()
	wire, err := n.sendCtrl(0, frame{
		kind: frameWinGet, epoch: w.epoch, win: int32(win), req: req, rank: int32(n.rank),
	})
	if err != nil {
		n.getMu.Lock()
		delete(n.getReqs, req)
		n.getMu.Unlock()
		return nil, wire
	}
	select {
	case v, ok := <-ch:
		if !ok {
			return nil, wire
		}
		return v, wire
	case <-w.closedCh:
		n.getMu.Lock()
		delete(n.getReqs, req)
		n.getMu.Unlock()
		return nil, wire
	}
}

// teardown fails the node once: connections close, open worlds close with
// the cause, parked frames release their payloads, and outstanding window
// gets unblock. Reader goroutines exit on their connection's error.
func (n *tcpNode) teardown(cause error) {
	if !n.closed.CompareAndSwap(false, true) {
		return
	}
	if cause == nil {
		cause = errTransportClosed
	}
	close(n.hbStop)
	for _, p := range n.peers {
		if p != nil {
			p.conn.Close()
		}
	}
	n.mu.Lock()
	worlds := make([]*World, 0, len(n.worlds))
	for _, w := range n.worlds {
		worlds = append(worlds, w)
	}
	pending := n.pending
	n.pending = make(map[uint64][]pendItem)
	n.mu.Unlock()
	for _, w := range worlds {
		w.closeWith(cause, false)
	}
	for _, items := range pending {
		for _, it := range items {
			discardItem(it)
		}
	}
	n.getMu.Lock()
	reqs := n.getReqs
	n.getReqs = make(map[uint64]chan []float64)
	n.getMu.Unlock()
	for _, ch := range reqs {
		close(ch)
	}
	n.pingMu.Lock()
	pings := n.pings
	n.pings = nil
	n.pingMu.Unlock()
	for _, ch := range pings {
		close(ch)
	}
}

// Handshake plumbing: fixed header (magic, version, kind, body length)
// then a kind-specific body, all little-endian.

func writeHS(conn net.Conn, kind byte, body []byte) error {
	buf := make([]byte, 0, 11+len(body))
	buf = appendU32(buf, hsMagic)
	buf = binary.LittleEndian.AppendUint16(buf, hsVersion)
	buf = append(buf, kind)
	buf = appendU32(buf, uint32(len(body)))
	buf = append(buf, body...)
	_, err := conn.Write(buf)
	return err
}

func readHS(br *bufio.Reader, wantKind byte) ([]byte, error) {
	var hdr [11]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if magic := binary.LittleEndian.Uint32(hdr[:]); magic != hsMagic {
		return nil, fmt.Errorf("mpi: bad handshake magic %#x", magic)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != hsVersion {
		return nil, fmt.Errorf("mpi: handshake version %d, want %d", v, hsVersion)
	}
	if hdr[6] != wantKind {
		return nil, fmt.Errorf("mpi: handshake kind %d, want %d", hdr[6], wantKind)
	}
	bl := binary.LittleEndian.Uint32(hdr[7:])
	if bl > maxHandshake {
		return nil, fmt.Errorf("mpi: handshake body %d exceeds cap %d", bl, maxHandshake)
	}
	body := make([]byte, bl)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	return body, nil
}

// AcceptTCP waits on ln for n-1 workers to join, assigns ranks in arrival
// order, ships each the peer address table, and returns rank 0's cluster
// handle once all links are up. The listener is consumed: AcceptTCP
// closes it on return. ctx bounds the whole bootstrap.
func AcceptTCP(ctx context.Context, ln net.Listener, n int) (*Cluster, error) {
	defer ln.Close()
	if n < 1 {
		n = 1
	}
	node := newTCPNode(0, n)
	cl := &Cluster{n: n, tcp: node}
	if n == 1 {
		return cl, nil
	}
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()
	addrs := make([]string, n)
	addrs[0] = ln.Addr().String()
	fail := func(err error) (*Cluster, error) {
		node.teardown(err)
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		return nil, err
	}
	for r := 1; r < n; r++ {
		conn, err := ln.Accept()
		if err != nil {
			return fail(fmt.Errorf("mpi: accept: %w", err))
		}
		br := bufio.NewReaderSize(conn, 1<<16)
		body, err := readHS(br, hsJoin)
		if err != nil {
			conn.Close()
			return fail(fmt.Errorf("mpi: join handshake: %w", err))
		}
		addrs[r] = string(body)
		node.attach(r, conn, br)
	}
	var table []byte
	table = appendU32(table, uint32(n))
	for _, a := range addrs {
		table = binary.LittleEndian.AppendUint16(table, uint16(len(a)))
		table = append(table, a...)
	}
	for r := 1; r < n; r++ {
		body := appendI32(nil, int32(r))
		body = append(body, table...)
		if err := writeHS(node.peers[r].conn, hsWelcome, body); err != nil {
			return fail(fmt.Errorf("mpi: welcome to rank %d: %w", r, err))
		}
	}
	node.startReaders()
	return cl, nil
}

// JoinTCP dials the rank-0 process at rootAddr, receives this process's
// rank assignment and the peer table, and completes the full mesh (dial
// lower ranks, accept higher ones) before returning the worker's cluster
// handle. ctx bounds the whole bootstrap.
func JoinTCP(ctx context.Context, rootAddr string) (*Cluster, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", rootAddr)
	if err != nil {
		return nil, fmt.Errorf("mpi: dial root %s: %w", rootAddr, err)
	}
	host, _, err := net.SplitHostPort(conn.LocalAddr().String())
	if err != nil {
		conn.Close()
		return nil, err
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("mpi: worker listen: %w", err)
	}
	stop := context.AfterFunc(ctx, func() { ln.Close(); conn.Close() })
	defer stop()
	defer ln.Close()
	fail := func(err error) (*Cluster, error) {
		conn.Close()
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		return nil, err
	}
	if err := writeHS(conn, hsJoin, []byte(ln.Addr().String())); err != nil {
		return fail(fmt.Errorf("mpi: join: %w", err))
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	body, err := readHS(br, hsWelcome)
	if err != nil {
		return fail(fmt.Errorf("mpi: welcome: %w", err))
	}
	cur := frameCursor{b: body}
	myRank32, err := cur.i32()
	if err != nil {
		return fail(err)
	}
	size32, err := cur.u32()
	if err != nil {
		return fail(err)
	}
	rank, size := int(myRank32), int(size32)
	if size < 2 || rank < 1 || rank >= size {
		return fail(fmt.Errorf("mpi: welcome assigns rank %d of %d", rank, size))
	}
	addrs := make([]string, size)
	for r := range addrs {
		al, err := cur.u16()
		if err != nil {
			return fail(err)
		}
		if cur.remain() < int(al) {
			return fail(fmt.Errorf("mpi: welcome table truncated at rank %d", r))
		}
		addrs[r] = string(cur.b[cur.off : cur.off+int(al)])
		cur.off += int(al)
	}
	node := newTCPNode(rank, size)
	node.attach(0, conn, br)
	cleanup := func(err error) (*Cluster, error) {
		node.teardown(err)
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		return nil, err
	}
	// Dial lower ranks first, then accept higher ones. Rank k's dials only
	// need ranks below k to have reached their accept phase, which holds
	// inductively, so the sequential order cannot deadlock.
	for r := 1; r < rank; r++ {
		pc, err := d.DialContext(ctx, "tcp", addrs[r])
		if err != nil {
			return cleanup(fmt.Errorf("mpi: dial rank %d: %w", r, err))
		}
		if err := writeHS(pc, hsPeer, appendI32(nil, int32(rank))); err != nil {
			pc.Close()
			return cleanup(fmt.Errorf("mpi: peer hello to rank %d: %w", r, err))
		}
		pbr := bufio.NewReaderSize(pc, 1<<16)
		ok, err := readHS(pbr, hsPeerOK)
		if err != nil {
			pc.Close()
			return cleanup(fmt.Errorf("mpi: peer ack from rank %d: %w", r, err))
		}
		if len(ok) < 4 || int(int32(binary.LittleEndian.Uint32(ok))) != r {
			pc.Close()
			return cleanup(fmt.Errorf("mpi: rank %d answered for someone else", r))
		}
		node.attach(r, pc, pbr)
	}
	for i := 0; i < size-1-rank; i++ {
		pc, err := ln.Accept()
		if err != nil {
			return cleanup(fmt.Errorf("mpi: peer accept: %w", err))
		}
		pbr := bufio.NewReaderSize(pc, 1<<16)
		hello, err := readHS(pbr, hsPeer)
		if err != nil {
			pc.Close()
			return cleanup(fmt.Errorf("mpi: peer hello: %w", err))
		}
		if len(hello) < 4 {
			pc.Close()
			return cleanup(errors.New("mpi: short peer hello"))
		}
		pr := int(int32(binary.LittleEndian.Uint32(hello)))
		if pr <= rank || pr >= size || node.peers[pr] != nil {
			pc.Close()
			return cleanup(fmt.Errorf("mpi: unexpected peer rank %d", pr))
		}
		if err := writeHS(pc, hsPeerOK, appendI32(nil, int32(rank))); err != nil {
			pc.Close()
			return cleanup(fmt.Errorf("mpi: peer ack to rank %d: %w", pr, err))
		}
		node.attach(pr, pc, pbr)
	}
	node.startReaders()
	return &Cluster{n: size, rank: rank, tcp: node}, nil
}

// LoopbackClusters bootstraps an n-process-shaped TCP cluster entirely
// inside this process: n single-rank nodes connected over the loopback
// interface. Each returned handle acts as one process of an SPMD run —
// tests and benchmarks drive them from n goroutines to exercise the real
// wire path without spawning workers. Callers Close every handle.
func LoopbackClusters(ctx context.Context, n int) ([]*Cluster, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	clusters := make([]*Cluster, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		clusters[0], errs[0] = AcceptTCP(ctx, ln, n)
	}()
	addr := ln.Addr().String()
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clusters[i], errs[i] = JoinTCP(ctx, addr)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, cl := range clusters {
				if cl != nil {
					cl.Close()
				}
			}
			return nil, err
		}
	}
	return clusters, nil
}
