package mpi

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// runSPMD mirrors how real multi-process runs drive a wire cluster: every
// node mints its next world and runs the same rank function, exactly as
// the SPMD contract requires. Returns one RunCtx error per node.
func runSPMD(ctx context.Context, clusters []*Cluster, fn func(c *Comm) error) []error {
	worlds := make([]*World, len(clusters))
	for i, cl := range clusters {
		worlds[i] = cl.NewWorld()
	}
	errs := make([]error, len(clusters))
	var wg sync.WaitGroup
	for i, w := range worlds {
		wg.Add(1)
		go func(i int, w *World) {
			defer wg.Done()
			errs[i] = w.RunCtx(ctx, fn)
		}(i, w)
	}
	wg.Wait()
	return errs
}

func loopback(t *testing.T, n int) []*Cluster {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	clusters, err := LoopbackClusters(ctx, n)
	if err != nil {
		t.Fatalf("LoopbackClusters(%d): %v", n, err)
	}
	t.Cleanup(func() {
		for _, cl := range clusters {
			cl.Close()
		}
	})
	return clusters
}

func TestTCPSendRecv(t *testing.T) {
	clusters := loopback(t, 2)
	errs := runSPMD(context.Background(), clusters, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 7, []byte("over the wire")); err != nil {
				return err
			}
			d, src, tag, err := c.Recv(context.Background(), 1, 9)
			if err != nil {
				return err
			}
			if string(d) != "and back" || src != 1 || tag != 9 {
				return fmt.Errorf("got %q from %d tag %d", d, src, tag)
			}
			PutBytes(d)
			return nil
		}
		d, src, tag, err := c.Recv(context.Background(), 0, 7)
		if err != nil {
			return err
		}
		if string(d) != "over the wire" || src != 0 || tag != 7 {
			return fmt.Errorf("got %q from %d tag %d", d, src, tag)
		}
		PutBytes(d)
		return c.Send(0, 9, []byte("and back"))
	})
	for i, err := range errs {
		if err != nil {
			t.Errorf("node %d: %v", i, err)
		}
	}
}

func TestTCPSendRefTypedPayloads(t *testing.T) {
	clusters := loopback(t, 2)
	errs := runSPMD(context.Background(), clusters, func(c *Comm) error {
		if c.Rank() == 0 {
			f := GetFloats(3)
			f[0], f[1], f[2] = 1.5, -2.25, 3.125
			if err := c.SendRef(1, 5, f, 24); err != nil {
				return err
			}
			b := GetBytes(4)
			copy(b, "refs")
			return c.SendRef(1, 6, b, 4)
		}
		ref, _, _, err := c.RecvRef(context.Background(), 0, 5)
		if err != nil {
			return err
		}
		f, ok := ref.([]float64)
		if !ok || len(f) != 3 || f[1] != -2.25 {
			return fmt.Errorf("float ref arrived as %#v", ref)
		}
		PutFloats(f)
		ref, _, _, err = c.RecvRef(context.Background(), 0, 6)
		if err != nil {
			return err
		}
		b, ok := ref.([]byte)
		if !ok || string(b) != "refs" {
			return fmt.Errorf("byte ref arrived as %#v", ref)
		}
		PutBytes(b)
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Errorf("node %d: %v", i, err)
		}
	}
}

func TestTCPBarrier(t *testing.T) {
	clusters := loopback(t, 3)
	var order sync.Map
	var hits [3]int
	errs := runSPMD(context.Background(), clusters, func(c *Comm) error {
		for round := 0; round < 5; round++ {
			order.Store(fmt.Sprintf("%d/%d", round, c.Rank()), true)
			if err := c.Barrier(); err != nil {
				return err
			}
			// After the barrier, every rank's entry for this round exists.
			for r := 0; r < c.Size(); r++ {
				if _, ok := order.Load(fmt.Sprintf("%d/%d", round, r)); !ok {
					return fmt.Errorf("round %d: rank %d missing after barrier", round, r)
				}
			}
			hits[c.Rank()]++
		}
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Errorf("node %d: %v", i, err)
		}
	}
	for r, h := range hits {
		if h != 5 {
			t.Errorf("rank %d completed %d rounds, want 5", r, h)
		}
	}
}

func TestTCPWindow(t *testing.T) {
	clusters := loopback(t, 3)
	errs := runSPMD(context.Background(), clusters, func(c *Comm) error {
		win := c.World().NewWindow(c.Size())
		win.Put(c.Rank(), float64(10*(c.Rank()+1)))
		win.Add(c.Rank(), 1)
		if err := c.Barrier(); err != nil {
			return err
		}
		// Windows are eventually consistent across the wire: the barrier
		// orders rank entry, not frame application, so poll briefly.
		want := []float64{11, 21, 31}
		deadline := time.Now().Add(5 * time.Second)
		for {
			got := win.Get()
			match := len(got) == len(want)
			for i := range want {
				if match && got[i] != want[i] {
					match = false
				}
			}
			if match {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("rank %d window stuck at %v, want %v", c.Rank(), got, want)
			}
			time.Sleep(time.Millisecond)
		}
	})
	for i, err := range errs {
		if err != nil {
			t.Errorf("node %d: %v", i, err)
		}
	}
}

func TestTCPCollectives(t *testing.T) {
	clusters := loopback(t, 4)
	errs := runSPMD(context.Background(), clusters, func(c *Comm) error {
		ctx := context.Background()
		// Reduce at root 0.
		in := []float64{float64(c.Rank() + 1), 1}
		sum, err := c.Reduce(ctx, 0, 40, in, OpSum)
		if err != nil {
			return err
		}
		if c.Rank() == 0 && (sum[0] != 10 || sum[1] != 4) {
			return fmt.Errorf("reduce got %v", sum)
		}
		// Allreduce visible everywhere.
		all, err := c.Allreduce(ctx, 42, []float64{float64(c.Rank())}, OpMax)
		if err != nil {
			return err
		}
		if all[0] != 3 {
			return fmt.Errorf("allreduce got %v", all)
		}
		// Bcast from a non-zero root.
		var payload []byte
		if c.Rank() == 2 {
			payload = []byte("tree")
		}
		d, err := c.Bcast(ctx, 2, 44, payload)
		if err != nil {
			return err
		}
		if string(d) != "tree" {
			return fmt.Errorf("bcast got %q", d)
		}
		if c.Rank() != 2 {
			PutBytes(d)
		}
		// Gather at root 1.
		parts, err := c.Gather(ctx, 1, 46, []byte{byte('a' + c.Rank())})
		if err != nil {
			return err
		}
		if c.Rank() == 1 {
			for r, p := range parts {
				if string(p) != string(byte('a'+r)) {
					return fmt.Errorf("gather rank %d got %q", r, p)
				}
				if r != 1 {
					PutBytes(p)
				}
			}
		}
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Errorf("node %d: %v", i, err)
		}
	}
}

// TestTCPRemoteFailurePropagates is the cancellation check against the
// wire transport: a failure on one process unblocks receives everywhere
// and attributes the failing rank across the process boundary.
func TestTCPRemoteFailurePropagates(t *testing.T) {
	clusters := loopback(t, 2)
	boom := errors.New("boom")
	errs := runSPMD(context.Background(), clusters, func(c *Comm) error {
		if c.Rank() == 1 {
			return boom
		}
		_, _, _, err := c.Recv(context.Background(), 1, 3) // never sent
		if !errors.Is(err, ErrWorldClosed) {
			return fmt.Errorf("recv returned %v, want ErrWorldClosed match", err)
		}
		return nil
	})
	for i, err := range errs {
		var re *RankError
		if !errors.As(err, &re) || re.Rank != 1 {
			t.Errorf("node %d returned %v, want RankError for rank 1", i, err)
		}
	}
	if !errors.Is(errs[1], boom) {
		t.Errorf("failing node lost the original cause: %v", errs[1])
	}
}

// TestTCPCancelReleasesPooledPayloads is the PoolCounters leak check
// against the wire transport: pooled payloads queued on both sides of the
// wire when a world is torn down mid-run must drain back to the pools.
// Both loopback nodes share this process, so the process-global counters
// must balance once the cluster has quiesced.
func TestTCPCancelReleasesPooledPayloads(t *testing.T) {
	gets0, puts0 := PoolCounters()
	clusters := loopback(t, 2)
	stall := make(chan struct{})
	errs := runSPMD(context.Background(), clusters, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 50; i++ {
				buf := GetBytes(256)
				if err := c.Send(1, 11, buf); err != nil {
					PutBytes(buf)
					break
				}
			}
			return errors.New("teardown with queued payloads")
		}
		// Receive a few, release them, then block until teardown.
		for i := 0; i < 3; i++ {
			d, _, _, err := c.Recv(context.Background(), 0, 11)
			if err != nil {
				return nil
			}
			PutBytes(d)
		}
		<-stall
		_, _, _, err := c.Recv(context.Background(), 0, 99)
		if !errors.Is(err, ErrWorldClosed) {
			return fmt.Errorf("want closed world, got %v", err)
		}
		return nil
	})
	close(stall)
	_ = errs
	for _, cl := range clusters {
		cl.Close()
	}
	gets1, puts1 := PoolCounters()
	if gets1-gets0 != puts1-puts0 {
		t.Fatalf("pool imbalance over TCP teardown: %d gets vs %d puts", gets1-gets0, puts1-puts0)
	}
}

// TestTCPPendingEpochDelivery exercises SPMD skew: a sender races ahead
// into a world the receiver has not minted yet; the frames park on the
// transport and deliver when the receiver catches up.
func TestTCPPendingEpochDelivery(t *testing.T) {
	clusters := loopback(t, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	result := make([]string, 2)
	go func() { // node 0 runs ahead
		defer wg.Done()
		w := clusters[0].NewWorld()
		result[0] = fmt.Sprint(w.RunCtx(context.Background(), func(c *Comm) error {
			return c.Send(1, 5, []byte("early"))
		}))
	}()
	go func() { // node 1 mints its world late
		defer wg.Done()
		time.Sleep(50 * time.Millisecond)
		w := clusters[1].NewWorld()
		result[1] = fmt.Sprint(w.RunCtx(context.Background(), func(c *Comm) error {
			d, _, _, err := c.Recv(context.Background(), 0, 5)
			if err != nil {
				return err
			}
			if string(d) != "early" {
				return fmt.Errorf("got %q", d)
			}
			PutBytes(d)
			return nil
		}))
	}()
	wg.Wait()
	for i, r := range result {
		if r != "<nil>" {
			t.Errorf("node %d: %s", i, r)
		}
	}
}

func TestTCPStatsCountRealFrameBytes(t *testing.T) {
	clusters := loopback(t, 2)
	worlds := []*World{clusters[0].NewWorld(), clusters[1].NewWorld()}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_ = worlds[0].RunCtx(context.Background(), func(c *Comm) error {
			return c.Send(1, 3, []byte("0123456789"))
		})
	}()
	go func() {
		defer wg.Done()
		_ = worlds[1].RunCtx(context.Background(), func(c *Comm) error {
			d, _, _, err := c.Recv(context.Background(), 0, 3)
			if err == nil {
				PutBytes(d)
			}
			return err
		})
	}()
	wg.Wait()
	st := worlds[0].Stats()
	if st.Messages.Load() != 1 {
		t.Fatalf("messages = %d, want 1", st.Messages.Load())
	}
	// Frame = 4 length + 1 kind + 8 epoch + 4+4+4 ranks/tag + 2 codec + 10 payload.
	if got := st.Bytes.Load(); got != 37 {
		t.Fatalf("wire bytes = %d, want 37 (real frame size)", got)
	}
	if worlds[0].TransportName() != "tcp" || !worlds[0].MultiProcess() {
		t.Fatalf("transport introspection wrong: %q multiprocess=%v",
			worlds[0].TransportName(), worlds[0].MultiProcess())
	}
}

// TestTCPContextCancelUnblocks runs the RunCtx cancellation scenario from
// cancel_test.go against the wire transport: canceling one process's
// context must unblock receives on every process of the world.
func TestTCPContextCancelUnblocks(t *testing.T) {
	clusters := loopback(t, 2)
	ctx0, cancel := context.WithCancel(context.Background())
	worlds := []*World{clusters[0].NewWorld(), clusters[1].NewWorld()}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = worlds[0].RunCtx(ctx0, func(c *Comm) error {
			_, _, _, err := c.Recv(ctx0, 1, 77) // never sent
			return err
		})
	}()
	var peerUnblocked error
	go func() {
		defer wg.Done()
		errs[1] = worlds[1].RunCtx(context.Background(), func(c *Comm) error {
			_, _, _, err := c.Recv(context.Background(), 0, 77) // never sent
			peerUnblocked = err
			return nil
		})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	wg.Wait()
	if !errors.Is(errs[0], context.Canceled) {
		t.Errorf("canceled node returned %v, want context.Canceled", errs[0])
	}
	if !errors.Is(peerUnblocked, ErrWorldClosed) {
		t.Errorf("peer recv got %v, want ErrWorldClosed match", peerUnblocked)
	}
	// The peer's RunCtx reports the remote teardown cause — same contract
	// as in-process, where RunCtx surfaces the close cause even when the
	// local rank function succeeded.
	if errs[1] == nil {
		t.Error("peer RunCtx returned nil, want the propagated teardown cause")
	}
}
