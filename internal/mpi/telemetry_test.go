package mpi

import (
	"context"
	"testing"
	"time"
)

// TestTCPClockSync pings across a loopback cluster with deliberately
// skewed per-node clocks and checks the midpoint estimator recovers the
// skew. Loopback RTTs are microseconds while the injected skews are
// seconds, so a generous tolerance still pins the estimate to the right
// clock.
func TestTCPClockSync(t *testing.T) {
	clusters := byRank(loopback(t, 3))
	base := time.Now()
	skews := []int64{0, 5_000_000_000, -3_000_000_000}
	for _, cl := range clusters {
		skew := skews[cl.Rank()]
		cl.SetNowFunc(func() int64 { return int64(time.Since(base)) + skew })
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	offsets, err := clusters[0].MeasureOffsets(ctx, 5)
	if err != nil {
		t.Fatalf("MeasureOffsets: %v", err)
	}
	if len(offsets) != 3 {
		t.Fatalf("got %d offsets, want 3", len(offsets))
	}
	const tol = int64(200 * time.Millisecond)
	for r, cs := range offsets {
		if cs.Rank != r {
			t.Errorf("offset %d labeled rank %d", r, cs.Rank)
		}
		want := skews[0] - skews[r] // remote ts + offset = local ts
		if diff := cs.OffsetNS - want; diff < -tol || diff > tol {
			t.Errorf("rank %d: offset %d, want %d±%d", r, cs.OffsetNS, want, tol)
		}
		if r == 0 && (cs.OffsetNS != 0 || cs.RTTNS != 0) {
			t.Errorf("own rank offset not zero: %+v", cs)
		}
		if r != 0 && cs.RTTNS < 0 {
			t.Errorf("rank %d: negative RTT %d", r, cs.RTTNS)
		}
	}
	if _, err := clusters[0].PingRank(ctx, 99, 1); err == nil {
		t.Error("PingRank accepted out-of-range rank")
	}
}

// byRank reorders loopback clusters so index i hosts rank i (the join
// handshake assigns ranks in connection order, not construction order).
func byRank(clusters []*Cluster) []*Cluster {
	out := make([]*Cluster, len(clusters))
	for _, cl := range clusters {
		out[cl.Rank()] = cl
	}
	return out
}

// TestTCPTelemetryShipping sends a codec-typed payload from each worker
// rank before a barrier and checks rank 0 holds all of them once the
// barrier releases — the FIFO-before-barrier guarantee the launcher's
// trace collection leans on.
func TestTCPTelemetryShipping(t *testing.T) {
	clusters := byRank(loopback(t, 3))
	errs := runSPMD(context.Background(), clusters, func(c *Comm) error {
		if c.Rank() != 0 {
			payload := []float64{float64(c.Rank()), 2, 3}
			if err := clusters[c.Rank()].SendTelemetry(payload); err != nil {
				return err
			}
		}
		return c.Barrier()
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	items := clusters[0].Telemetry()
	if len(items) != 2 {
		t.Fatalf("rank 0 collected %d telemetry items, want 2", len(items))
	}
	seen := map[int]bool{}
	for _, it := range items {
		vals, ok := it.Payload.([]float64)
		if !ok || len(vals) != 3 || vals[0] != float64(it.Rank) {
			t.Fatalf("item from rank %d decoded wrong: %#v", it.Rank, it.Payload)
		}
		seen[it.Rank] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("missing ranks in telemetry: %v", seen)
	}
	if again := clusters[0].Telemetry(); len(again) != 0 {
		t.Errorf("second drain returned %d items, want 0", len(again))
	}
	if err := clusters[0].SendTelemetry([]float64{9}); err != nil {
		t.Errorf("rank 0 SendTelemetry should no-op: %v", err)
	}
	if err := clusters[1].SendTelemetry(struct{ X int }{}); err == nil {
		t.Error("SendTelemetry accepted an unregistered payload type")
	}
}

// TestInProcessTelemetryNoops pins the in-process cluster contract:
// offsets are all zero (one address space, one clock), telemetry is a
// local no-op, and SetNowFunc is safe to call.
func TestInProcessTelemetryNoops(t *testing.T) {
	cl := InProcess(4)
	cl.SetNowFunc(func() int64 { return 42 })
	offsets, err := cl.MeasureOffsets(context.Background(), 3)
	if err != nil {
		t.Fatalf("MeasureOffsets: %v", err)
	}
	if len(offsets) != 4 {
		t.Fatalf("got %d offsets, want 4", len(offsets))
	}
	for _, cs := range offsets {
		if cs.OffsetNS != 0 || cs.RTTNS != 0 {
			t.Errorf("in-process offset not zero: %+v", cs)
		}
	}
	if err := cl.SendTelemetry([]float64{1}); err != nil {
		t.Errorf("SendTelemetry: %v", err)
	}
	if items := cl.Telemetry(); items != nil {
		t.Errorf("Telemetry returned %v, want nil", items)
	}
}
