// Package perfmodel is the discrete-event performance model standing in
// for the paper's 32-node Infiniband cluster (this reproduction runs on a
// single core, so wall-clock speedup beyond one cannot be measured
// directly). The simulator replays measured per-subdomain meshing costs
// through the paper's scheduling policy — per-rank priority queues,
// largest-first processing, work stealing from the most loaded rank when a
// rank runs dry — under a latency/bandwidth communication model, producing
// the strong-scaling speedup and efficiency curves of Figures 11 and 12.
// The curve shape is governed by load imbalance, steal traffic and the
// sequential fraction, all of which the model captures; absolute seconds
// are whatever the calibration run measured.
package perfmodel

import (
	"fmt"
	"math"
	"sort"
)

// Task is one unit of meshing work for the simulator.
type Task struct {
	// Cost is the processing time in seconds (measured by running the real
	// kernel on the subdomain, or scaled from a triangle-count estimate).
	Cost float64
	// Bytes is the transfer size when the task moves between ranks.
	Bytes int64
	// BoundaryLayer tasks are processed before inviscid tasks.
	BoundaryLayer bool
}

// Network is the communication cost model: Latency seconds per message
// plus Bytes/Bandwidth seconds of serialization. The paper's 4X FDR
// Infiniband is roughly 1.5 microseconds and 56 Gbit/s.
type Network struct {
	Latency   float64
	Bandwidth float64 // bytes per second
}

// FDRInfiniband approximates the evaluation cluster's interconnect.
func FDRInfiniband() Network {
	return Network{Latency: 1.5e-6, Bandwidth: 56e9 / 8}
}

// Result summarizes one simulated run.
type Result struct {
	Ranks    int
	Makespan float64 // wall time, including the sequential fraction
	Steals   int
	IdleTime float64 // summed across ranks
	WorkTime float64 // summed task costs
	CommTime float64 // summed transfer costs
}

// Simulate runs the schedule of tasks on the given number of ranks.
// seqTime is the non-overlappable sequential fraction (input reading,
// the first levels of the decomposition tree, final gather); it is added
// to the makespan. Tasks are dealt round-robin by descending cost, which
// mirrors the pipeline's initial distribution.
func Simulate(tasks []Task, ranks int, net Network, seqTime float64) Result {
	return SimulatePolicy(tasks, ranks, net, seqTime, Policy{LargestFirst: true, Prefetch: true})
}

// SimulateOrder is Simulate with an explicit choice of queue discipline:
// largestFirst false keeps the caller's task order (FIFO), the ablation
// baseline against the paper's largest-first priority queues.
func SimulateOrder(tasks []Task, ranks int, net Network, seqTime float64, largestFirst bool) Result {
	return SimulatePolicy(tasks, ranks, net, seqTime, Policy{LargestFirst: largestFirst, Prefetch: true})
}

// Policy selects the scheduling behaviors whose value the paper argues
// for; the ablation benchmarks flip them off individually.
type Policy struct {
	// LargestFirst processes each queue in descending cost order with
	// boundary-layer tasks first (the paper's priority queue); false is
	// plain FIFO.
	LargestFirst bool
	// Prefetch overlaps steal communication with the victim-side mesher:
	// the communicator thread requests work before the mesher runs dry, so
	// the transfer hides behind the rank's last task. False models a
	// single-threaded design where the mesher blocks for the transfer.
	Prefetch bool
}

// SimulatePolicy runs the schedule under an explicit policy.
func SimulatePolicy(tasks []Task, ranks int, net Network, seqTime float64, pol Policy) Result {
	if ranks < 1 {
		ranks = 1
	}
	res := Result{Ranks: ranks}
	for _, t := range tasks {
		res.WorkTime += t.Cost
	}
	if ranks == 1 {
		res.Makespan = seqTime + res.WorkTime
		return res
	}

	// Initial distribution: largest first, round-robin. Queues keep tasks
	// sorted by priority (boundary layer first, then cost descending).
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	if pol.LargestFirst {
		sort.Slice(order, func(a, b int) bool {
			ta, tb := tasks[order[a]], tasks[order[b]]
			if ta.BoundaryLayer != tb.BoundaryLayer {
				return ta.BoundaryLayer
			}
			return ta.Cost > tb.Cost
		})
	}
	queues := make([][]int, ranks)
	for i, ti := range order {
		r := i % ranks
		queues[r] = append(queues[r], ti)
	}

	now := make([]float64, ranks) // per-rank clock
	lastCost := make([]float64, ranks)
	remaining := make([]float64, ranks)
	for r, q := range queues {
		for _, ti := range q {
			remaining[r] += tasks[ti].Cost
		}
	}
	left := len(tasks)
	for left > 0 {
		// Pick the rank that will act next: the earliest-clock rank that
		// either has work or can steal.
		r := -1
		for i := 0; i < ranks; i++ {
			if r == -1 || now[i] < now[r] {
				r = i
			}
		}
		if len(queues[r]) > 0 {
			ti := queues[r][0]
			queues[r] = queues[r][1:]
			now[r] += tasks[ti].Cost
			lastCost[r] = tasks[ti].Cost
			remaining[r] -= tasks[ti].Cost
			left--
			continue
		}
		// Steal: ask the most loaded rank (by remaining estimate) for its
		// top task. The requester pays two latencies (request + grant) plus
		// the transfer; the victim's communicator thread serves the request
		// without interrupting its mesher, per the paper's two-thread
		// design.
		victim := -1
		for i := 0; i < ranks; i++ {
			if i == r || len(queues[i]) == 0 {
				continue
			}
			if victim == -1 || remaining[i] > remaining[victim] {
				victim = i
			}
		}
		if victim == -1 {
			// Nothing to steal; this rank is done. Park it at +inf so it
			// is never selected again.
			now[r] = math.Inf(1)
			continue
		}
		// Steal the victim's largest queued task (head of its queue).
		ti := queues[victim][0]
		queues[victim] = queues[victim][1:]
		remaining[victim] -= tasks[ti].Cost
		t := tasks[ti]
		comm := 2*net.Latency + float64(t.Bytes)/net.Bandwidth
		res.CommTime += comm
		res.Steals++
		delay := comm
		if pol.Prefetch {
			// The communicator issued the request while the mesher was
			// still busy on the rank's previous task, so only the part of
			// the transfer that outlasts it delays the mesher.
			delay = comm - lastCost[r]
			if delay < 0 {
				delay = 0
			}
		}
		now[r] += delay + t.Cost
		lastCost[r] = t.Cost
		left--
	}
	makespan := 0.0
	for _, t := range now {
		if !math.IsInf(t, 1) && t > makespan {
			makespan = t
		}
	}
	// Idle time: rank-seconds of capacity not spent on work or transfers.
	res.IdleTime = float64(ranks)*makespan - res.WorkTime - res.CommTime
	if res.IdleTime < 0 {
		res.IdleTime = 0
	}
	res.Makespan = seqTime + makespan
	return res
}

// ScalePoint is one point of a strong-scaling study.
type ScalePoint struct {
	Ranks      int
	Time       float64
	Speedup    float64
	Efficiency float64
}

// StrongScaling simulates the fixed workload at every rank count and
// reports speedup and efficiency relative to the best sequential time
// (the paper's definition: speedup against the fastest sequential mesher,
// here the kernel's sequential time = total work without any parallel
// overhead).
func StrongScaling(tasks []Task, seqTime float64, net Network, rankCounts []int) []ScalePoint {
	var work float64
	for _, t := range tasks {
		work += t.Cost
	}
	tSeq := seqTime + work
	out := make([]ScalePoint, 0, len(rankCounts))
	for _, p := range rankCounts {
		r := Simulate(tasks, p, net, seqTime)
		sp := tSeq / r.Makespan
		out = append(out, ScalePoint{
			Ranks:      p,
			Time:       r.Makespan,
			Speedup:    sp,
			Efficiency: sp / float64(p),
		})
	}
	return out
}

// DecompositionOverhead estimates the sequential fraction contributed by
// the recursive decomposition tree: level l splits 2^l subdomains of
// n/2^l points each on 2^l ranks in parallel, costing splitCostPerPoint *
// n / 2^l wall seconds plus one half-subdomain transfer, until 2^l = P.
func DecompositionOverhead(points int, ranks int, splitCostPerPoint float64, net Network) float64 {
	total := 0.0
	n := float64(points)
	levels := int(math.Ceil(math.Log2(float64(ranks))))
	for l := 0; l < levels; l++ {
		wall := splitCostPerPoint * n / math.Pow(2, float64(l))
		bytes := 16 * n / math.Pow(2, float64(l+1))
		total += wall + net.Latency + bytes/net.Bandwidth
	}
	return total
}

// FormatTable renders scale points as the rows of Figures 11 and 12.
func FormatTable(points []ScalePoint) string {
	s := fmt.Sprintf("%8s %12s %10s %10s\n", "ranks", "time(s)", "speedup", "efficiency")
	for _, p := range points {
		s += fmt.Sprintf("%8d %12.4f %10.2f %9.1f%%\n", p.Ranks, p.Time, p.Speedup, 100*p.Efficiency)
	}
	return s
}

// WeakScaling simulates the complementary study the paper leaves to future
// work: the workload grows proportionally with the rank count (tasksPerRank
// replicas of the base task set per rank), so ideal behavior is constant
// wall time. Efficiency here is T(1-rank workload on 1 rank) / T(P-rank
// workload on P ranks).
func WeakScaling(baseTasks []Task, seqTime float64, net Network, rankCounts []int) []ScalePoint {
	if len(baseTasks) == 0 {
		return nil
	}
	t1 := Simulate(baseTasks, 1, net, seqTime).Makespan
	out := make([]ScalePoint, 0, len(rankCounts))
	for _, p := range rankCounts {
		tasks := make([]Task, 0, len(baseTasks)*p)
		for r := 0; r < p; r++ {
			tasks = append(tasks, baseTasks...)
		}
		res := Simulate(tasks, p, net, seqTime)
		eff := t1 / res.Makespan
		out = append(out, ScalePoint{
			Ranks:      p,
			Time:       res.Makespan,
			Speedup:    eff * float64(p), // total throughput relative to one rank
			Efficiency: eff,
		})
	}
	return out
}
