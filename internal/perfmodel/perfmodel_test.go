package perfmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func uniformTasks(n int, cost float64, bytes int64) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{Cost: cost, Bytes: bytes}
	}
	return tasks
}

func TestSimulateSequential(t *testing.T) {
	tasks := uniformTasks(10, 2.0, 1000)
	r := Simulate(tasks, 1, FDRInfiniband(), 1.0)
	if math.Abs(r.Makespan-21.0) > 1e-12 {
		t.Errorf("sequential makespan = %v, want 21", r.Makespan)
	}
	if r.Steals != 0 {
		t.Error("sequential run cannot steal")
	}
}

func TestSimulatePerfectParallel(t *testing.T) {
	// 64 equal tasks on 8 ranks, free network, no sequential part:
	// perfect speedup.
	tasks := uniformTasks(64, 1.0, 0)
	r := Simulate(tasks, 8, Network{Latency: 0, Bandwidth: 1e30}, 0)
	if math.Abs(r.Makespan-8.0) > 1e-9 {
		t.Errorf("makespan = %v, want 8", r.Makespan)
	}
}

func TestAmdahlCeiling(t *testing.T) {
	// With a sequential fraction, speedup must respect Amdahl's law.
	tasks := uniformTasks(1024, 1.0, 0)
	seq := 10.24 // 1% of the 1024s of work
	pts := StrongScaling(tasks, seq, Network{Latency: 0, Bandwidth: 1e30}, []int{1, 32, 1024})
	if pts[0].Speedup != 1 {
		t.Errorf("P=1 speedup = %v", pts[0].Speedup)
	}
	// Amdahl: S(P) = (T1)/(seq + work/P).
	for _, p := range pts[1:] {
		want := (seq + 1024.0) / (seq + 1024.0/float64(p.Ranks))
		if math.Abs(p.Speedup-want) > 0.02*want {
			t.Errorf("P=%d speedup %v, want ~%v", p.Ranks, p.Speedup, want)
		}
	}
}

func TestEfficiencyBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(200)
		tasks := make([]Task, n)
		for i := range tasks {
			tasks[i] = Task{Cost: rng.Float64()*4 + 0.01, Bytes: int64(rng.Intn(100000))}
		}
		pts := StrongScaling(tasks, rng.Float64(), FDRInfiniband(), []int{1, 2, 4, 8, 16})
		for _, p := range pts {
			if p.Efficiency > 1.0+1e-9 || p.Efficiency <= 0 {
				return false
			}
			if p.Speedup > float64(p.Ranks)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestImbalanceHurtsScaling(t *testing.T) {
	// One giant task and many small ones: the makespan is bounded below by
	// the giant task, so speedup saturates.
	tasks := []Task{{Cost: 50}}
	tasks = append(tasks, uniformTasks(100, 0.5, 0)...)
	r := Simulate(tasks, 64, Network{Latency: 0, Bandwidth: 1e30}, 0)
	if r.Makespan < 50 {
		t.Errorf("makespan %v below the critical path of 50", r.Makespan)
	}
	// Speedup bound: total work 100 / 50 = 2.
	if sp := 100.0 / r.Makespan; sp > 2.0+1e-9 {
		t.Errorf("speedup %v beyond critical path bound", sp)
	}
}

func TestStealsHappen(t *testing.T) {
	// With tasks dealt round-robin but wildly uneven costs, some rank runs
	// dry and must steal.
	rng := rand.New(rand.NewSource(1))
	tasks := make([]Task, 100)
	for i := range tasks {
		tasks[i] = Task{Cost: math.Pow(10, rng.Float64()*2), Bytes: 1 << 16}
	}
	r := Simulate(tasks, 8, FDRInfiniband(), 0)
	if r.Steals == 0 {
		t.Error("uneven workload must trigger steals")
	}
}

func TestSlowNetworkDegradesEfficiency(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tasks := make([]Task, 200)
	for i := range tasks {
		tasks[i] = Task{Cost: rng.Float64() * 0.01, Bytes: 10 << 20}
	}
	fast := Simulate(tasks, 16, FDRInfiniband(), 0)
	slow := Simulate(tasks, 16, Network{Latency: 1e-3, Bandwidth: 1e6}, 0)
	if slow.Makespan <= fast.Makespan {
		t.Errorf("slow network makespan %v not worse than fast %v", slow.Makespan, fast.Makespan)
	}
}

func TestPaperScalingShape(t *testing.T) {
	// A workload shaped like the paper's: thousands of graded subdomains,
	// sequential fraction ~0.2% of the work. The resulting curve must show
	// the paper's regime: near-linear at small P, ~80% efficiency at 128,
	// ~70% at 256, and efficiency decreasing with P.
	rng := rand.New(rand.NewSource(7))
	var tasks []Task
	for i := 0; i < 4096; i++ {
		tasks = append(tasks, Task{
			Cost:  0.04 + rng.Float64()*0.02,
			Bytes: 64 << 10,
		})
	}
	var work float64
	for _, t := range tasks {
		work += t.Cost
	}
	seq := 0.002 * work
	pts := StrongScaling(tasks, seq, FDRInfiniband(), []int{1, 2, 4, 8, 16, 32, 64, 128, 256})
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup <= pts[i-1].Speedup {
			t.Errorf("speedup not increasing: P=%d %v -> P=%d %v",
				pts[i-1].Ranks, pts[i-1].Speedup, pts[i].Ranks, pts[i].Speedup)
		}
		if pts[i].Efficiency > pts[i-1].Efficiency+1e-9 {
			t.Errorf("efficiency increasing with P at %d", pts[i].Ranks)
		}
	}
	e128 := pts[7].Efficiency
	e256 := pts[8].Efficiency
	if e128 < 0.6 || e128 > 0.95 {
		t.Errorf("efficiency at 128 = %v, want the paper's ~0.8 regime", e128)
	}
	if e256 < 0.5 || e256 > 0.9 {
		t.Errorf("efficiency at 256 = %v, want the paper's ~0.7 regime", e256)
	}
	if e256 >= e128 {
		t.Errorf("efficiency must drop from 128 (%v) to 256 (%v)", e128, e256)
	}
}

func TestDecompositionOverhead(t *testing.T) {
	net := FDRInfiniband()
	o1 := DecompositionOverhead(1<<20, 2, 1e-8, net)
	o2 := DecompositionOverhead(1<<20, 256, 1e-8, net)
	if o2 <= o1 {
		t.Errorf("more ranks need more decomposition levels: %v vs %v", o2, o1)
	}
	// The tree is geometric: total < 2x the first level.
	first := 1e-8 * float64(1<<20)
	if o2 > 3*first {
		t.Errorf("decomposition overhead %v not geometric (first level %v)", o2, first)
	}
}

func TestFormatTable(t *testing.T) {
	pts := []ScalePoint{{Ranks: 1, Time: 1, Speedup: 1, Efficiency: 1}}
	s := FormatTable(pts)
	if len(s) == 0 {
		t.Error("empty table")
	}
}

func BenchmarkSimulate256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tasks := make([]Task, 4096)
	for i := range tasks {
		tasks[i] = Task{Cost: rng.Float64() * 0.1, Bytes: 64 << 10}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(tasks, 256, FDRInfiniband(), 0.1)
	}
}

func TestPrefetchHidesCommunication(t *testing.T) {
	// Heavy transfers on a slow network: with prefetch the steal latency
	// hides behind the previous task; without it, the mesher blocks.
	rng := rand.New(rand.NewSource(5))
	tasks := make([]Task, 64)
	for i := range tasks {
		tasks[i] = Task{Cost: 0.01 + rng.Float64()*0.05, Bytes: 8 << 20}
	}
	net := Network{Latency: 1e-4, Bandwidth: 1e9} // 8 MiB ~ 8 ms per steal
	with := SimulatePolicy(tasks, 8, net, 0, Policy{LargestFirst: true, Prefetch: true})
	without := SimulatePolicy(tasks, 8, net, 0, Policy{LargestFirst: true, Prefetch: false})
	if with.Steals == 0 {
		t.Skip("no steals in this configuration")
	}
	if with.Makespan >= without.Makespan {
		t.Errorf("prefetch makespan %v not better than blocking %v (steals=%d)",
			with.Makespan, without.Makespan, with.Steals)
	}
}

func TestPolicyDefaults(t *testing.T) {
	tasks := uniformTasks(32, 1, 1000)
	a := Simulate(tasks, 4, FDRInfiniband(), 0)
	b := SimulatePolicy(tasks, 4, FDRInfiniband(), 0, Policy{LargestFirst: true, Prefetch: true})
	if a.Makespan != b.Makespan {
		t.Errorf("Simulate must equal the default policy: %v vs %v", a.Makespan, b.Makespan)
	}
}

func TestWeakScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := make([]Task, 64)
	for i := range base {
		base[i] = Task{Cost: 0.01 + rng.Float64()*0.01, Bytes: 32 << 10}
	}
	pts := WeakScaling(base, 0.001, FDRInfiniband(), []int{1, 4, 16, 64})
	if len(pts) != 4 {
		t.Fatal("points")
	}
	if pts[0].Efficiency < 0.999 {
		t.Errorf("P=1 weak efficiency %v, want ~1", pts[0].Efficiency)
	}
	for i := 1; i < len(pts); i++ {
		// Ideal weak scaling keeps time flat; overheads may only grow.
		if pts[i].Time < pts[i-1].Time*0.99 {
			t.Errorf("weak-scaling time dropped from %v to %v", pts[i-1].Time, pts[i].Time)
		}
		if pts[i].Efficiency > 1.001 {
			t.Errorf("weak efficiency above 1 at P=%d", pts[i].Ranks)
		}
	}
	// With a balanced workload the efficiency should stay high.
	if last := pts[len(pts)-1].Efficiency; last < 0.7 {
		t.Errorf("weak efficiency at 64 ranks = %v; balanced replicas should stay above 0.7", last)
	}
	if len(WeakScaling(nil, 0, FDRInfiniband(), []int{1})) != 0 {
		t.Error("empty base tasks must give no points")
	}
}
