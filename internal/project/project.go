// Package project implements the projection-based parallel Delaunay
// decomposition of Blelloch, Miller and Talmor used by the paper to
// triangulate the boundary layer: a subdomain of vertices is split by a
// median line; the Delaunay edges crossing the median line (the dividing
// path) are found as the lower convex hull of the vertices projected onto
// a paraboloid centered at the median vertex and flattened onto the
// vertical plane perpendicular to the cut axis (paper Figures 6 and 7).
// Each leaf subdomain is triangulated independently by the sequential
// kernel, and triangles are assigned to the leaf whose region contains
// their circumcenter, which reconstitutes exactly the Delaunay
// triangulation of the whole point set.
//
// The Subdomain data layout follows the paper's implementation section:
// vertices are stored contiguously in both x-sorted and y-sorted order, so
// the bounding box and the median are O(1) and splits are linear with a
// comparison-free copy of the primary-sorted half.
package project

import (
	"math"
	"slices"

	"pamg2d/internal/geom"
	"pamg2d/internal/hull"
)

// Vertex is a point with its global id and the scratch projection
// ordinate. The projected coordinate lives inline in the Vertex (rather
// than in a separate array) for the cache locality the paper's
// implementation section calls out; it is recomputed at every split
// because it depends on the median vertex.
type Vertex struct {
	P    geom.Point
	ID   int32
	Proj float64
}

// Subdomain is a set of vertices held in two sort orders, plus the
// axis-aligned region of the plane whose circumcenters it owns.
type Subdomain struct {
	// XS holds the vertices sorted lexicographically by (X, Y); YS holds
	// the same vertices sorted by (Y, X).
	XS, YS []Vertex
	// Region is the rectangle of circumcenter space owned by this
	// subdomain; triangles whose circumcenter falls here belong to it.
	Region Rect
	// Depth is the recursion depth at which this subdomain was created.
	Depth int
}

// Rect is an axis-aligned, half-open region [MinX,MaxX) x [MinY,MaxY),
// unbounded at infinities.
type Rect struct {
	MinX, MaxX, MinY, MaxY float64
}

// WholePlane returns the unbounded region.
func WholePlane() Rect {
	return Rect{math.Inf(-1), math.Inf(1), math.Inf(-1), math.Inf(1)}
}

// Contains reports whether p lies in the half-open region.
func (r Rect) Contains(p geom.Point) bool {
	return p.X >= r.MinX && p.X < r.MaxX && p.Y >= r.MinY && p.Y < r.MaxY
}

// New builds the root subdomain from a point set, assigning global ids in
// input order. Duplicate points are dropped (keeping the first), since the
// comparison-free median split requires distinct vertices.
func New(pts []geom.Point) *Subdomain {
	s := &Subdomain{Region: WholePlane()}
	s.XS = make([]Vertex, len(pts))
	for i, p := range pts {
		s.XS[i] = Vertex{P: p, ID: int32(i)}
	}
	sortX(s.XS)
	uniq := s.XS[:0]
	for _, v := range s.XS {
		if len(uniq) == 0 || uniq[len(uniq)-1].P != v.P {
			uniq = append(uniq, v)
		}
	}
	s.XS = uniq
	s.YS = make([]Vertex, len(s.XS))
	copy(s.YS, s.XS)
	sortY(s.YS)
	return s
}

func sortX(v []Vertex) {
	slices.SortFunc(v, cmpX)
}

func sortY(v []Vertex) {
	slices.SortFunc(v, cmpY)
}

func cmpX(a, b Vertex) int {
	switch {
	case a.P.X < b.P.X:
		return -1
	case a.P.X > b.P.X:
		return 1
	case a.P.Y < b.P.Y:
		return -1
	case a.P.Y > b.P.Y:
		return 1
	}
	return 0
}

func cmpY(a, b Vertex) int {
	switch {
	case a.P.Y < b.P.Y:
		return -1
	case a.P.Y > b.P.Y:
		return 1
	case a.P.X < b.P.X:
		return -1
	case a.P.X > b.P.X:
		return 1
	}
	return 0
}

func lessX(a, b Vertex) bool {
	if a.P.X != b.P.X {
		return a.P.X < b.P.X
	}
	return a.P.Y < b.P.Y
}

func lessY(a, b Vertex) bool {
	if a.P.Y != b.P.Y {
		return a.P.Y < b.P.Y
	}
	return a.P.X < b.P.X
}

// Len returns the number of vertices.
func (s *Subdomain) Len() int { return len(s.XS) }

// BBox returns the bounding box in O(1) using the first and last vertices
// of the two sorted arrays.
func (s *Subdomain) BBox() geom.BBox {
	if len(s.XS) == 0 {
		return geom.EmptyBBox()
	}
	return geom.BBox{
		Min: geom.Pt(s.XS[0].P.X, s.YS[0].P.Y),
		Max: geom.Pt(s.XS[len(s.XS)-1].P.X, s.YS[len(s.YS)-1].P.Y),
	}
}

// CutVertical reports whether the next cut should use a vertical median
// line (x = median): chosen when the box is wider than tall, i.e. the cut
// axis is parallel to the shortest bounding-box edge, avoiding long skinny
// subdomains that are expensive to triangulate.
func (s *Subdomain) CutVertical() bool {
	bb := s.BBox()
	return bb.Width() >= bb.Height()
}

// PathEdge is one Delaunay edge of a dividing path.
type PathEdge struct {
	A, B Vertex
}

// Split divides the subdomain at the median of its longer axis. It
// returns the two halves and the dividing path of Delaunay edges. Hull
// (path) vertices are duplicated into both halves, as the algorithm
// requires. Split leaves s unusable (its storage is reused by the left
// half, another implementation note from the paper).
func (s *Subdomain) Split() (left, right *Subdomain, path []PathEdge) {
	return s.SplitAxis(s.CutVertical())
}

// SplitAxis is Split with an explicit cut orientation; the ablation
// benchmarks use it to compare the paper's shortest-bbox-edge rule against
// always-vertical cuts (Triangle-style).
func (s *Subdomain) SplitAxis(vertical bool) (left, right *Subdomain, path []PathEdge) {
	n := len(s.XS)
	if n < 2 {
		return s, nil, nil
	}

	var primary, secondary []Vertex // primary: sorted along the split axis
	if vertical {
		primary, secondary = s.XS, s.YS
	} else {
		primary, secondary = s.YS, s.XS
	}
	m := n / 2
	median := primary[m]

	// Project every vertex onto the paraboloid centered at the median
	// vertex and flatten onto the plane perpendicular to the cut axis.
	// The flattened abscissa is the coordinate along the median line; the
	// ordinate is the lift. The secondary array is already sorted by the
	// abscissa, so the monotone chain below runs in linear time.
	for i := range secondary {
		dx := secondary[i].P.X - median.P.X
		dy := secondary[i].P.Y - median.P.Y
		secondary[i].Proj = dx*dx + dy*dy
	}
	flat := make([]geom.Point, len(secondary))
	for i, v := range secondary {
		if vertical {
			flat[i] = geom.Pt(v.P.Y, v.Proj)
		} else {
			flat[i] = geom.Pt(v.P.X, v.Proj)
		}
	}
	// Ties in the abscissa must be ordered by the lift for the chain to be
	// a valid lexicographic order; fix up runs of equal abscissa (rare).
	fixTies(flat, secondary)
	hullIdx := hull.LowerSorted(flat)

	hullVerts := make([]Vertex, len(hullIdx))
	for i, hi := range hullIdx {
		hullVerts[i] = secondary[hi]
	}
	if len(hullVerts) > 1 {
		path = make([]PathEdge, 0, len(hullVerts)-1)
	}
	for i := 0; i+1 < len(hullVerts); i++ {
		path = append(path, PathEdge{hullVerts[i], hullVerts[i+1]})
	}

	isLeft := func(v Vertex) bool {
		if vertical {
			return lessX(v, median)
		}
		return lessY(v, median)
	}

	// Partition the primary array with a comparison-free split at the
	// median index (the paper's memcpy optimization), and the secondary
	// array by comparing against the median vertex. The secondary halves
	// hold the same vertices as the primary halves, so their exact sizes
	// are m and n-m.
	leftPrimary := primary[:m]
	rightPrimary := primary[m:]
	leftSecondary := make([]Vertex, 0, m)
	rightSecondary := make([]Vertex, 0, n-m)
	for _, v := range secondary {
		if isLeft(v) {
			leftSecondary = append(leftSecondary, v)
		} else {
			rightSecondary = append(rightSecondary, v)
		}
	}

	// Duplicate hull vertices into the half they are missing from.
	addLeft := make([]Vertex, 0, len(hullVerts))
	addRight := make([]Vertex, 0, len(hullVerts))
	for _, v := range hullVerts {
		if isLeft(v) {
			addRight = append(addRight, v)
		} else {
			addLeft = append(addLeft, v)
		}
	}

	left = &Subdomain{Region: s.Region, Depth: s.Depth + 1}
	right = &Subdomain{Region: s.Region, Depth: s.Depth + 1}
	var cut float64
	if vertical {
		cut = median.P.X
		left.Region.MaxX = math.Min(left.Region.MaxX, cut)
		right.Region.MinX = math.Max(right.Region.MinX, cut)
	} else {
		cut = median.P.Y
		left.Region.MaxY = math.Min(left.Region.MaxY, cut)
		right.Region.MinY = math.Max(right.Region.MinY, cut)
	}

	if vertical {
		left.XS = mergeSorted(leftPrimary, addLeft, cmpX)
		right.XS = mergeSorted(rightPrimary, addRight, cmpX)
		left.YS = mergeSorted(leftSecondary, addLeft, cmpY)
		right.YS = mergeSorted(rightSecondary, addRight, cmpY)
	} else {
		left.YS = mergeSorted(leftPrimary, addLeft, cmpY)
		right.YS = mergeSorted(rightPrimary, addRight, cmpY)
		left.XS = mergeSorted(leftSecondary, addLeft, cmpX)
		right.XS = mergeSorted(rightSecondary, addRight, cmpX)
	}
	return left, right, path
}

// fixTies restores lexicographic (abscissa, ordinate) order within runs of
// equal abscissa, keeping the paired vertex array aligned.
func fixTies(flat []geom.Point, verts []Vertex) {
	i := 0
	for i < len(flat) {
		j := i + 1
		for j < len(flat) && flat[j].X == flat[i].X {
			j++
		}
		if j-i > 1 {
			idx := make([]int, j-i)
			for k := range idx {
				idx[k] = i + k
			}
			slices.SortFunc(idx, func(a, b int) int {
				switch {
				case flat[a].Y < flat[b].Y:
					return -1
				case flat[a].Y > flat[b].Y:
					return 1
				}
				return 0
			})
			tmpF := make([]geom.Point, j-i)
			tmpV := make([]Vertex, j-i)
			for k, id := range idx {
				tmpF[k] = flat[id]
				tmpV[k] = verts[id]
			}
			copy(flat[i:j], tmpF)
			copy(verts[i:j], tmpV)
		}
		i = j
	}
}

// mergeSorted merges a sorted base slice with a small extras slice in
// linear time. extras is sorted in place (callers pass scratch that every
// merge re-sorts for its own order, so no defensive copy is needed).
func mergeSorted(base, extras []Vertex, cmp func(a, b Vertex) int) []Vertex {
	if len(extras) == 0 {
		// Reuse the parent's storage (the paper reuses the original
		// subdomain's allocation for the left half); the parent is dead
		// after the split.
		return base
	}
	slices.SortFunc(extras, cmp)
	out := make([]Vertex, 0, len(base)+len(extras))
	i, j := 0, 0
	for i < len(base) && j < len(extras) {
		if cmp(base[i], extras[j]) < 0 {
			out = append(out, base[i])
			i++
		} else {
			out = append(out, extras[j])
			j++
		}
	}
	out = append(out, base[i:]...)
	out = append(out, extras[j:]...)
	return out
}

// Points returns the subdomain's points in x-sorted order, ready for the
// kernel's sorted fast path.
func (s *Subdomain) Points() []geom.Point {
	out := make([]geom.Point, len(s.XS))
	for i, v := range s.XS {
		out[i] = v.P
	}
	return out
}

// IDs returns the global vertex ids in x-sorted order, aligned with
// Points.
func (s *Subdomain) IDs() []int32 {
	out := make([]int32, len(s.XS))
	for i, v := range s.XS {
		out[i] = v.ID
	}
	return out
}

// DropYSorted releases the y-sorted array once a subdomain is sufficiently
// decomposed: only the x-sorted vertices are needed by the kernel, which
// also halves the cost of transferring the subdomain to another process
// (implementation note from the paper).
func (s *Subdomain) DropYSorted() { s.YS = nil }

// Options bounds the recursive decomposition.
type Options struct {
	// MinVerts stops splitting a subdomain smaller than this.
	MinVerts int
	// MaxDepth stops splitting at this recursion depth; the paper derives
	// it from the number of processes.
	MaxDepth int
	// ForceVertical always cuts with a vertical median line instead of the
	// shortest-bbox-edge rule (ablation switch).
	ForceVertical bool
}

// Decompose recursively splits the root subdomain until every leaf is
// sufficiently decomposed, returning the leaves and all dividing paths.
func Decompose(root *Subdomain, opt Options) (leaves []*Subdomain, paths []PathEdge) {
	if opt.MinVerts < 2 {
		opt.MinVerts = 2
	}
	var rec func(s *Subdomain)
	rec = func(s *Subdomain) {
		if s.Len() < opt.MinVerts || (opt.MaxDepth > 0 && s.Depth >= opt.MaxDepth) {
			leaves = append(leaves, s)
			return
		}
		n := s.Len()
		vertical := s.CutVertical()
		if opt.ForceVertical {
			vertical = true
		}
		l, r, p := s.SplitAxis(vertical)
		if r == nil || l.Len() >= n || r.Len() >= n {
			// The split made no progress (degenerate data); stop here.
			leaves = append(leaves, s)
			return
		}
		paths = append(paths, p...)
		rec(l)
		rec(r)
	}
	rec(root)
	return leaves, paths
}
