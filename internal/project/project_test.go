package project

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pamg2d/internal/delaunay"
	"pamg2d/internal/geom"
)

func randPts(seed int64, n int) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	return pts
}

func TestNewSortedInvariants(t *testing.T) {
	s := New(randPts(1, 200))
	for i := 1; i < len(s.XS); i++ {
		if lessX(s.XS[i], s.XS[i-1]) {
			t.Fatal("XS not sorted")
		}
	}
	for i := 1; i < len(s.YS); i++ {
		if lessY(s.YS[i], s.YS[i-1]) {
			t.Fatal("YS not sorted")
		}
	}
	if s.Len() != 200 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestNewDedups(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(2, 2), geom.Pt(1, 1), geom.Pt(2, 2)}
	s := New(pts)
	if s.Len() != 2 {
		t.Errorf("dedup: Len = %d, want 2", s.Len())
	}
}

func TestBBoxO1(t *testing.T) {
	pts := randPts(2, 500)
	s := New(pts)
	want := geom.BBoxOf(pts)
	if got := s.BBox(); got != want {
		t.Errorf("BBox = %+v, want %+v", got, want)
	}
}

func TestCutAxisChoice(t *testing.T) {
	// Wide box: cut with vertical line.
	wide := New([]geom.Point{geom.Pt(0, 0), geom.Pt(10, 1), geom.Pt(5, 0.5), geom.Pt(2, 0.2)})
	if !wide.CutVertical() {
		t.Error("wide box must cut vertically")
	}
	tall := New([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 10), geom.Pt(0.5, 5), geom.Pt(0.1, 3)})
	if tall.CutVertical() {
		t.Error("tall box must cut horizontally")
	}
}

func TestSplitPreservesMultiset(t *testing.T) {
	pts := randPts(3, 301)
	s := New(pts)
	n := s.Len()
	l, r, path := s.Split()
	if len(path) == 0 {
		t.Fatal("no dividing path")
	}
	// Hull vertices are duplicated; total = n + len(hull dupes).
	dupes := 0
	seen := map[int32]int{}
	for _, v := range l.XS {
		seen[v.ID]++
	}
	for _, v := range r.XS {
		seen[v.ID]++
	}
	for _, c := range seen {
		if c == 2 {
			dupes++
		} else if c != 1 {
			t.Fatalf("vertex appears %d times", c)
		}
	}
	if len(seen) != n {
		t.Errorf("union covers %d of %d vertices", len(seen), n)
	}
	if dupes == 0 {
		t.Error("hull vertices must appear in both halves")
	}
	// Sorted invariants hold in both halves.
	for _, sd := range []*Subdomain{l, r} {
		for i := 1; i < len(sd.XS); i++ {
			if lessX(sd.XS[i], sd.XS[i-1]) {
				t.Fatal("child XS not sorted")
			}
		}
		for i := 1; i < len(sd.YS); i++ {
			if lessY(sd.YS[i], sd.YS[i-1]) {
				t.Fatal("child YS not sorted")
			}
		}
		if len(sd.XS) != len(sd.YS) {
			t.Fatal("XS and YS lengths differ")
		}
	}
}

// dtEdges returns the set of undirected edges of the Delaunay
// triangulation of pts, keyed by point coordinates.
func dtEdges(t *testing.T, pts []geom.Point) map[[4]float64]bool {
	t.Helper()
	res, err := delaunay.Triangulate(delaunay.Input{Points: pts})
	if err != nil {
		t.Fatal(err)
	}
	edges := map[[4]float64]bool{}
	for _, tri := range res.Triangles {
		for e := 0; e < 3; e++ {
			a := res.Points[tri[e]]
			b := res.Points[tri[(e+1)%3]]
			edges[edgeKey(a, b)] = true
		}
	}
	return edges
}

func edgeKey(a, b geom.Point) [4]float64 {
	if a.X > b.X || (a.X == b.X && a.Y > b.Y) {
		a, b = b, a
	}
	return [4]float64{a.X, a.Y, b.X, b.Y}
}

// TestDividingPathEdgesAreDelaunay is the Figure 6/7 property: every edge
// of the dividing path must be an edge of the Delaunay triangulation of
// the full point set.
func TestDividingPathEdgesAreDelaunay(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		pts := randPts(seed, 120)
		edges := dtEdges(t, pts)
		s := New(pts)
		_, _, path := s.Split()
		if len(path) < 2 {
			t.Fatal("path too short")
		}
		for _, pe := range path {
			if !edges[edgeKey(pe.A.P, pe.B.P)] {
				t.Fatalf("seed %d: path edge %v-%v not a Delaunay edge", seed, pe.A.P, pe.B.P)
			}
		}
	}
}

// TestMergedTriangulationExact reconstructs the full Delaunay
// triangulation from independently triangulated leaves via the
// circumcenter-region rule and compares it with the direct triangulation.
func TestMergedTriangulationExact(t *testing.T) {
	for seed := int64(10); seed < 13; seed++ {
		pts := randPts(seed, 400)
		frame := geom.BBoxOf(pts)
		leaves, _ := Decompose(New(pts), Options{MinVerts: 40})
		if len(leaves) < 4 {
			t.Fatalf("seed %d: only %d leaves", seed, len(leaves))
		}
		var merged []triKey
		for _, leaf := range leaves {
			res, err := delaunay.Triangulate(delaunay.Input{Points: leaf.Points(), Sorted: true, Frame: frame})
			if err != nil {
				t.Fatal(err)
			}
			for _, tri := range res.Triangles {
				a, b, c := res.Points[tri[0]], res.Points[tri[1]], res.Points[tri[2]]
				cc := geom.Circumcenter(a, b, c)
				if leaf.Region.Contains(cc) {
					merged = append(merged, canonTri(a, b, c))
				}
			}
		}
		// Direct triangulation with the same frame.
		res, err := delaunay.Triangulate(delaunay.Input{Points: pts, Frame: frame})
		if err != nil {
			t.Fatal(err)
		}
		var direct []triKey
		for _, tri := range res.Triangles {
			direct = append(direct, canonTri(res.Points[tri[0]], res.Points[tri[1]], res.Points[tri[2]]))
		}
		sortTris(merged)
		sortTris(direct)
		if len(merged) != len(direct) {
			t.Fatalf("seed %d: merged %d triangles, direct %d", seed, len(merged), len(direct))
		}
		for i := range merged {
			if merged[i] != direct[i] {
				t.Fatalf("seed %d: triangle %d differs: %v vs %v", seed, i, merged[i], direct[i])
			}
		}
	}
}

type triKey = [6]float64

func canonTri(a, b, c geom.Point) triKey {
	ps := []geom.Point{a, b, c}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
	return triKey{ps[0].X, ps[0].Y, ps[1].X, ps[1].Y, ps[2].X, ps[2].Y}
}

func sortTris(ts []triKey) {
	sort.Slice(ts, func(i, j int) bool {
		for k := 0; k < 6; k++ {
			if ts[i][k] != ts[j][k] {
				return ts[i][k] < ts[j][k]
			}
		}
		return false
	})
}

func TestDecomposeLeafCount(t *testing.T) {
	pts := randPts(7, 1<<13)
	// MaxDepth 7 yields up to 128 leaves (Figure 8: the boundary layer
	// decomposed into 128 independent Delaunay subdomains).
	leaves, paths := Decompose(New(pts), Options{MinVerts: 2, MaxDepth: 7})
	if len(leaves) != 128 {
		t.Errorf("leaves = %d, want 128", len(leaves))
	}
	if len(paths) == 0 {
		t.Error("no dividing paths recorded")
	}
}

func TestDecomposeMinVerts(t *testing.T) {
	pts := randPts(8, 1000)
	leaves, _ := Decompose(New(pts), Options{MinVerts: 100})
	for _, l := range leaves {
		// A leaf is either below the threshold or the result of splitting
		// a parent above it; parents above 2*threshold always split into
		// smaller halves, so leaves stay under ~threshold + hull dupes.
		if l.Len() >= 2*100+50 {
			t.Errorf("leaf with %d vertices; decomposition stopped too early", l.Len())
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	// All-collinear points.
	var pts []geom.Point
	for i := 0; i < 64; i++ {
		pts = append(pts, geom.Pt(float64(i), 0))
	}
	leaves, _ := Decompose(New(pts), Options{MinVerts: 8})
	total := 0
	for _, l := range leaves {
		total += l.Len()
	}
	if total < 64 {
		t.Errorf("collinear: leaves cover %d of 64 vertices", total)
	}
	// A single point and empty input must not crash.
	if l, _, _ := New([]geom.Point{geom.Pt(1, 1)}).Split(); l.Len() != 1 {
		t.Error("single-point split")
	}
	if s := New(nil); s.Len() != 0 {
		t.Error("empty input")
	}
}

func TestDropYSorted(t *testing.T) {
	s := New(randPts(9, 50))
	s.DropYSorted()
	if s.YS != nil {
		t.Error("DropYSorted must release the y-sorted array")
	}
	if len(s.Points()) != 50 || len(s.IDs()) != 50 {
		t.Error("Points/IDs must still work from XS")
	}
}

// Property: decomposition covers every vertex and keeps region ownership
// disjoint (each point belongs to exactly one region).
func TestRegionPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		pts := randPts(seed, 150)
		leaves, _ := Decompose(New(pts), Options{MinVerts: 20})
		for _, p := range pts {
			owners := 0
			for _, l := range leaves {
				if l.Region.Contains(p) {
					owners++
				}
			}
			if owners != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSplit(b *testing.B) {
	pts := randPts(1, 100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New(pts)
		b.StartTimer()
		s.Split()
	}
}

func BenchmarkDecompose128(b *testing.B) {
	pts := randPts(1, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New(pts)
		b.StartTimer()
		Decompose(s, Options{MinVerts: 2, MaxDepth: 7})
	}
}
