package pslg

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"pamg2d/internal/geom"
)

// WritePoly writes the graph in Triangle's .poly format: a vertex section,
// a segment section connecting each loop, and a hole section with one seed
// inside each body. Mesh generators built on Triangle exchange geometry in
// this format, so the push-button CLI reads and writes it.
func (g *Graph) WritePoly(w io.Writer) error {
	bw := bufio.NewWriter(w)
	loops := make([]*Loop, 0, len(g.Surfaces)+1)
	for i := range g.Surfaces {
		loops = append(loops, &g.Surfaces[i])
	}
	if len(g.Farfield.Points) > 0 {
		loops = append(loops, &g.Farfield)
	}
	total := 0
	for _, l := range loops {
		total += len(l.Points)
	}
	fmt.Fprintf(bw, "# pamg2d PSLG\n")
	fmt.Fprintf(bw, "%d 2 0 1\n", total)
	idx := 0
	starts := make([]int, len(loops))
	for li, l := range loops {
		starts[li] = idx
		for _, p := range l.Points {
			// The boundary marker column carries the loop index + 1.
			fmt.Fprintf(bw, "%d %.17g %.17g %d\n", idx, p.X, p.Y, li+1)
			idx++
		}
	}
	fmt.Fprintf(bw, "%d 1\n", total)
	seg := 0
	for li, l := range loops {
		n := len(l.Points)
		for k := 0; k < n; k++ {
			fmt.Fprintf(bw, "%d %d %d %d\n", seg, starts[li]+k, starts[li]+(k+1)%n, li+1)
			seg++
		}
	}
	fmt.Fprintf(bw, "%d\n", len(g.Surfaces))
	for i := range g.Surfaces {
		h := InteriorPointOf(&g.Surfaces[i])
		fmt.Fprintf(bw, "%d %.17g %.17g\n", i, h.X, h.Y)
	}
	return bw.Flush()
}

// ReadPoly reads a .poly file written by WritePoly (or a compatible subset
// of Triangle's format: vertices and segments with boundary markers that
// group segments into loops, where each marker's segments form one closed
// loop). The loop with the largest bounding box becomes the far field when
// it encloses every other loop; otherwise all loops are surfaces.
func ReadPoly(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fields := func() ([]string, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return strings.Fields(line), nil
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.ErrUnexpectedEOF
	}

	head, err := fields()
	if err != nil {
		return nil, fmt.Errorf("pslg: reading vertex header: %w", err)
	}
	var nv, dim, nattr, nmark int
	if _, err := fmt.Sscan(strings.Join(head, " "), &nv, &dim, &nattr, &nmark); err != nil {
		return nil, fmt.Errorf("pslg: vertex header %q: %w", head, err)
	}
	if dim != 2 {
		return nil, fmt.Errorf("pslg: dimension %d not supported", dim)
	}
	pts := make([]geom.Point, nv)
	ids := make(map[int]int, nv)
	for i := 0; i < nv; i++ {
		f, err := fields()
		if err != nil {
			return nil, fmt.Errorf("pslg: reading vertex %d: %w", i, err)
		}
		if len(f) < 3 {
			return nil, fmt.Errorf("pslg: vertex line %q too short", f)
		}
		var id int
		var x, y float64
		if _, err := fmt.Sscan(f[0], &id); err != nil {
			return nil, err
		}
		if _, err := fmt.Sscan(f[1], &x); err != nil {
			return nil, err
		}
		if _, err := fmt.Sscan(f[2], &y); err != nil {
			return nil, err
		}
		ids[id] = i
		pts[i] = geom.Pt(x, y)
	}

	head, err = fields()
	if err != nil {
		return nil, fmt.Errorf("pslg: reading segment header: %w", err)
	}
	var ns, smark int
	if _, err := fmt.Sscan(strings.Join(head, " "), &ns, &smark); err != nil {
		return nil, fmt.Errorf("pslg: segment header %q: %w", head, err)
	}
	// Chain segments grouped by marker into loops.
	type seg struct{ a, b int }
	byMarker := map[int][]seg{}
	for i := 0; i < ns; i++ {
		f, err := fields()
		if err != nil {
			return nil, fmt.Errorf("pslg: reading segment %d: %w", i, err)
		}
		if len(f) < 3 {
			return nil, fmt.Errorf("pslg: segment line %q too short", f)
		}
		var id, a, b, marker int
		fmt.Sscan(f[0], &id)
		if _, err := fmt.Sscan(f[1], &a); err != nil {
			return nil, err
		}
		if _, err := fmt.Sscan(f[2], &b); err != nil {
			return nil, err
		}
		if len(f) > 3 {
			fmt.Sscan(f[3], &marker)
		}
		ai, ok := ids[a]
		if !ok {
			return nil, fmt.Errorf("pslg: segment %d references unknown vertex %d", i, a)
		}
		bi, ok := ids[b]
		if !ok {
			return nil, fmt.Errorf("pslg: segment %d references unknown vertex %d", i, b)
		}
		byMarker[marker] = append(byMarker[marker], seg{ai, bi})
	}

	var loops []Loop
	for marker, segs := range byMarker {
		next := make(map[int]int, len(segs))
		for _, s := range segs {
			if _, dup := next[s.a]; dup {
				return nil, fmt.Errorf("pslg: marker %d: vertex %d starts two segments", marker, s.a)
			}
			next[s.a] = s.b
		}
		start := segs[0].a
		var loop []geom.Point
		v := start
		for {
			loop = append(loop, pts[v])
			nv, ok := next[v]
			if !ok {
				return nil, fmt.Errorf("pslg: marker %d: open chain at vertex %d", marker, v)
			}
			v = nv
			if v == start {
				break
			}
			if len(loop) > len(segs) {
				return nil, fmt.Errorf("pslg: marker %d: chain does not close", marker)
			}
		}
		if len(loop) != len(segs) {
			return nil, fmt.Errorf("pslg: marker %d forms %d loops; one expected", marker, 1+len(segs)-len(loop))
		}
		loops = append(loops, Loop{Points: loop, Name: fmt.Sprintf("loop-%d", marker)})
	}
	if len(loops) == 0 {
		return nil, fmt.Errorf("pslg: no loops found")
	}

	// The enclosing loop (if any) is the far field.
	g := &Graph{}
	outer := -1
	for i := range loops {
		enclosesAll := true
		for j := range loops {
			if i == j {
				continue
			}
			if !loops[i].Contains(loops[j].Points[0]) {
				enclosesAll = false
				break
			}
		}
		if enclosesAll && len(loops) > 1 {
			outer = i
			break
		}
	}
	for i := range loops {
		l := loops[i]
		if !l.IsCCW() {
			l.Reverse()
		}
		if i == outer {
			l.Name = "farfield"
			g.Farfield = l
		} else {
			g.Surfaces = append(g.Surfaces, l)
		}
	}
	return g, nil
}
