package pslg

import (
	"bytes"
	"strings"
	"testing"

	"pamg2d/internal/geom"
)

func TestPolyRoundTrip(t *testing.T) {
	g := &Graph{
		Surfaces: []Loop{
			square(1, 1, 1, "a"),
			square(4, 1, 1.5, "b"),
		},
		Farfield: square(-10, -10, 25, "farfield"),
	}
	var buf bytes.Buffer
	if err := g.WritePoly(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPoly(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Surfaces) != 2 {
		t.Fatalf("surfaces = %d, want 2", len(got.Surfaces))
	}
	if len(got.Farfield.Points) != 4 {
		t.Fatalf("farfield points = %d, want 4", len(got.Farfield.Points))
	}
	if !got.Farfield.IsCCW() {
		t.Error("farfield must come back CCW")
	}
	// Point sets must round-trip exactly (%.17g).
	wantPts := map[geom.Point]bool{}
	for i := range g.Surfaces {
		for _, p := range g.Surfaces[i].Points {
			wantPts[p] = true
		}
	}
	for i := range got.Surfaces {
		for _, p := range got.Surfaces[i].Points {
			if !wantPts[p] {
				t.Fatalf("unexpected surface point %v", p)
			}
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPolyRoundTripNoFarfield(t *testing.T) {
	g := &Graph{Surfaces: []Loop{square(0, 0, 1, "only")}}
	var buf bytes.Buffer
	if err := g.WritePoly(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPoly(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// A single loop encloses nothing else, so it stays a surface.
	if len(got.Surfaces) != 1 || len(got.Farfield.Points) != 0 {
		t.Fatalf("surfaces=%d farfield=%d", len(got.Surfaces), len(got.Farfield.Points))
	}
}

func TestReadPolyErrors(t *testing.T) {
	cases := []struct{ name, data string }{
		{"empty", ""},
		{"bad dim", "1 3 0 0\n0 1 2\n"},
		{"unknown vertex in segment", "2 2 0 0\n0 0 0\n1 1 0\n1 1\n0 0 5 1\n"},
		{"open chain", "3 2 0 0\n0 0 0\n1 1 0\n2 1 1\n2 1\n0 0 1 1\n1 1 2 1\n"},
		{"double start", "3 2 0 0\n0 0 0\n1 1 0\n2 1 1\n2 1\n0 0 1 1\n1 0 2 1\n"},
	}
	for _, c := range cases {
		if _, err := ReadPoly(strings.NewReader(c.data)); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestReadPolyCWLoopNormalized(t *testing.T) {
	// A clockwise input loop must come back CCW.
	data := `4 2 0 0
0 0 0
1 0 1
2 1 1
3 1 0
4 1
0 0 1 1
1 1 2 1
2 2 3 1
3 3 0 1
`
	g, err := ReadPoly(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Surfaces) != 1 {
		t.Fatalf("surfaces = %d", len(g.Surfaces))
	}
	if !g.Surfaces[0].IsCCW() {
		t.Error("loop must be normalized to CCW")
	}
}

func TestReadPolyComments(t *testing.T) {
	data := `# a comment
3 2 0 0
# vertices
0 0 0
1 1 0
2 0 1
3 1
0 0 1 1
1 1 2 1
2 2 0 1
`
	g, err := ReadPoly(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Surfaces) != 1 || len(g.Surfaces[0].Points) != 3 {
		t.Fatalf("parsed %+v", g)
	}
}
