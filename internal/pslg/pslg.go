// Package pslg models the planar straight-line graph input of the mesh
// generator: one or more closed polygonal loops (airfoil elements and the
// far-field boundary) with validation. All loops are stored
// counter-clockwise; for a CCW body loop the outward normal (into the
// fluid) of a directed edge is the edge direction rotated -90 degrees.
package pslg

import (
	"fmt"

	"pamg2d/internal/adt"
	"pamg2d/internal/geom"
)

// Loop is a closed polygonal chain; the segment i runs from Points[i] to
// Points[(i+1)%len].
type Loop struct {
	Points []geom.Point
	// Name labels the loop in diagnostics ("slat", "main", "farfield").
	Name string
}

// NumSegments returns the number of segments in the loop.
func (l *Loop) NumSegments() int { return len(l.Points) }

// Segment returns the i-th segment of the loop.
func (l *Loop) Segment(i int) geom.Segment {
	n := len(l.Points)
	return geom.Segment{A: l.Points[i%n], B: l.Points[(i+1)%n]}
}

// SignedArea returns the signed area of the loop (positive for
// counter-clockwise orientation).
func (l *Loop) SignedArea() float64 {
	var sum float64
	n := len(l.Points)
	for i := 0; i < n; i++ {
		p, q := l.Points[i], l.Points[(i+1)%n]
		sum += p.X*q.Y - q.X*p.Y
	}
	return sum / 2
}

// IsCCW reports whether the loop is counter-clockwise.
func (l *Loop) IsCCW() bool { return l.SignedArea() > 0 }

// Reverse flips the loop orientation in place.
func (l *Loop) Reverse() {
	for i, j := 0, len(l.Points)-1; i < j; i, j = i+1, j-1 {
		l.Points[i], l.Points[j] = l.Points[j], l.Points[i]
	}
}

// BBox returns the loop's bounding box.
func (l *Loop) BBox() geom.BBox { return geom.BBoxOf(l.Points) }

// Contains reports whether p lies strictly inside the loop, by ray casting
// with exact orientation tests on the crossings.
func (l *Loop) Contains(p geom.Point) bool {
	inside := false
	n := len(l.Points)
	for i := 0; i < n; i++ {
		a := l.Points[i]
		b := l.Points[(i+1)%n]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			// The horizontal ray to +x crosses segment (a,b) iff p is on
			// the side of (a,b) facing the crossing direction.
			s := geom.Orient2DSign(a, b, p)
			if b.Y > a.Y && s > 0 {
				inside = !inside
			} else if b.Y < a.Y && s < 0 {
				inside = !inside
			}
		}
	}
	return inside
}

// Graph is a complete PSLG: surface loops (bodies) plus an optional
// far-field loop enclosing them.
type Graph struct {
	Surfaces []Loop
	Farfield Loop
}

// Validate checks structural soundness: every loop has at least three
// points, no zero-length segments, no loop self-intersects, no two loops
// intersect, and all surfaces lie inside the far-field loop (when one is
// present). Intersection checks use an alternating digital tree over
// segment extent boxes so validation costs O(n log n).
func (g *Graph) Validate() error {
	all := make([]Loop, 0, len(g.Surfaces)+1)
	all = append(all, g.Surfaces...)
	hasFar := len(g.Farfield.Points) > 0
	if hasFar {
		all = append(all, g.Farfield)
	}
	type segInfo struct {
		s    geom.Segment
		loop int
		idx  int
	}
	var segs []segInfo
	world := geom.EmptyBBox()
	for li := range all {
		l := &all[li]
		if len(l.Points) < 3 {
			return fmt.Errorf("pslg: loop %q has %d points, need >= 3", l.Name, len(l.Points))
		}
		for i := 0; i < len(l.Points); i++ {
			s := l.Segment(i)
			if s.A == s.B {
				return fmt.Errorf("pslg: loop %q segment %d has zero length", l.Name, i)
			}
			segs = append(segs, segInfo{s, li, i})
			world = world.Union(s.BBox())
		}
	}
	tree := adt.NewForBox(world)
	for i, si := range segs {
		tree.InsertBox(si.s.BBox(), i)
	}
	for i, si := range segs {
		bad := false
		var with segInfo
		tree.VisitOverlapping(si.s.BBox(), func(j int) bool {
			if j <= i {
				return true
			}
			sj := segs[j]
			kind := geom.SegmentsIntersect(si.s, sj.s)
			switch kind {
			case geom.SegDisjoint:
				return true
			case geom.SegTouch:
				// Adjacent segments of the same loop may share an endpoint.
				if si.loop == sj.loop {
					n := len(all[si.loop].Points)
					d := (sj.idx - si.idx + n) % n
					if d == 1 || d == n-1 {
						return true
					}
				}
			}
			bad = true
			with = sj
			return false
		})
		if bad {
			return fmt.Errorf("pslg: loop %q segment %d intersects loop %q segment %d",
				all[si.loop].Name, si.idx, all[with.loop].Name, with.idx)
		}
	}
	if hasFar {
		for i := range g.Surfaces {
			for _, p := range g.Surfaces[i].Points {
				if !g.Farfield.Contains(p) {
					return fmt.Errorf("pslg: surface %q not inside the far-field loop", g.Surfaces[i].Name)
				}
			}
		}
	}
	return nil
}

// NumPoints returns the total number of points across all loops.
func (g *Graph) NumPoints() int {
	n := len(g.Farfield.Points)
	for i := range g.Surfaces {
		n += len(g.Surfaces[i].Points)
	}
	return n
}

// InteriorPointOf returns a point strictly inside the given loop, used as
// a hole seed for the Delaunay kernel. It probes inward from the midpoint
// of the first segment.
func InteriorPointOf(l *Loop) geom.Point {
	n := len(l.Points)
	best := geom.Point{}
	found := false
	scale := l.BBox().Width() + l.BBox().Height()
	for i := 0; i < n && !found; i++ {
		s := l.Segment(i)
		mid := s.Mid()
		normal := s.B.Sub(s.A).Perp().Unit()
		for _, dir := range []float64{1, -1} {
			for _, eps := range []float64{1e-6, 1e-4, 1e-3, 1e-2} {
				cand := mid.Add(normal.Scale(dir * eps * scale))
				if l.Contains(cand) {
					best = cand
					found = true
					break
				}
			}
			if found {
				break
			}
		}
	}
	return best
}
