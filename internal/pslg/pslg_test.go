package pslg

import (
	"strings"
	"testing"

	"pamg2d/internal/geom"
)

func square(x0, y0, s float64, name string) Loop {
	return Loop{
		Name: name,
		Points: []geom.Point{
			geom.Pt(x0, y0), geom.Pt(x0+s, y0), geom.Pt(x0+s, y0+s), geom.Pt(x0, y0+s),
		},
	}
}

func TestLoopBasics(t *testing.T) {
	l := square(0, 0, 2, "sq")
	if l.NumSegments() != 4 {
		t.Errorf("segments = %d", l.NumSegments())
	}
	if got := l.SignedArea(); got != 4 {
		t.Errorf("area = %v, want 4", got)
	}
	if !l.IsCCW() {
		t.Error("square must be CCW")
	}
	l.Reverse()
	if l.IsCCW() {
		t.Error("reversed square must be CW")
	}
	if got := l.SignedArea(); got != -4 {
		t.Errorf("reversed area = %v, want -4", got)
	}
}

func TestLoopContains(t *testing.T) {
	l := square(0, 0, 2, "sq")
	cases := []struct {
		p    geom.Point
		want bool
	}{
		{geom.Pt(1, 1), true},
		{geom.Pt(3, 1), false},
		{geom.Pt(-1, 1), false},
		{geom.Pt(1, 3), false},
		{geom.Pt(1.999, 1.999), true},
		{geom.Pt(0.001, 0.001), true},
	}
	for _, c := range cases {
		if got := l.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestLoopContainsConcave(t *testing.T) {
	// L-shaped loop.
	l := Loop{Name: "L", Points: []geom.Point{
		geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 2), geom.Pt(2, 2), geom.Pt(2, 4), geom.Pt(0, 4),
	}}
	if !l.Contains(geom.Pt(1, 3)) {
		t.Error("(1,3) is inside the L")
	}
	if l.Contains(geom.Pt(3, 3)) {
		t.Error("(3,3) is in the notch, outside the L")
	}
	if !l.Contains(geom.Pt(3, 1)) {
		t.Error("(3,1) is inside the L")
	}
}

func TestValidateOK(t *testing.T) {
	g := &Graph{
		Surfaces: []Loop{square(1, 1, 1, "body")},
		Farfield: square(-10, -10, 22, "farfield"),
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateTooFewPoints(t *testing.T) {
	g := &Graph{Surfaces: []Loop{{Name: "bad", Points: []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}}}}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "need >= 3") {
		t.Errorf("want too-few-points error, got %v", err)
	}
}

func TestValidateZeroLengthSegment(t *testing.T) {
	g := &Graph{Surfaces: []Loop{{Name: "bad", Points: []geom.Point{
		geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(1, 1),
	}}}}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "zero length") {
		t.Errorf("want zero-length error, got %v", err)
	}
}

func TestValidateSelfIntersection(t *testing.T) {
	// A bowtie.
	g := &Graph{Surfaces: []Loop{{Name: "bowtie", Points: []geom.Point{
		geom.Pt(0, 0), geom.Pt(2, 2), geom.Pt(2, 0), geom.Pt(0, 2),
	}}}}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "intersects") {
		t.Errorf("want intersection error, got %v", err)
	}
}

func TestValidateLoopLoopIntersection(t *testing.T) {
	g := &Graph{Surfaces: []Loop{
		square(0, 0, 2, "a"),
		square(1, 1, 2, "b"), // overlaps a
	}}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "intersects") {
		t.Errorf("want intersection error, got %v", err)
	}
}

func TestValidateSurfaceOutsideFarfield(t *testing.T) {
	g := &Graph{
		Surfaces: []Loop{square(100, 100, 1, "body")},
		Farfield: square(-10, -10, 20, "farfield"),
	}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "far-field") {
		t.Errorf("want far-field error, got %v", err)
	}
}

func TestValidateDisjointBodies(t *testing.T) {
	g := &Graph{
		Surfaces: []Loop{
			square(0, 0, 1, "a"),
			square(3, 0, 1, "b"),
			square(0, 3, 1, "c"),
		},
		Farfield: square(-20, -20, 44, "farfield"),
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInteriorPointOf(t *testing.T) {
	l := square(0, 0, 2, "sq")
	p := InteriorPointOf(&l)
	if !l.Contains(p) {
		t.Errorf("interior point %v not inside the loop", p)
	}
	// Concave loop.
	concave := Loop{Name: "L", Points: []geom.Point{
		geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 2), geom.Pt(2, 2), geom.Pt(2, 4), geom.Pt(0, 4),
	}}
	p = InteriorPointOf(&concave)
	if !concave.Contains(p) {
		t.Errorf("interior point %v not inside the concave loop", p)
	}
	// Clockwise loop must also work.
	cw := square(0, 0, 2, "cw")
	cw.Reverse()
	p = InteriorPointOf(&cw)
	if !cw.Contains(p) {
		t.Errorf("interior point %v not inside the CW loop", p)
	}
}

func TestNumPoints(t *testing.T) {
	g := &Graph{
		Surfaces: []Loop{square(0, 0, 1, "a"), square(3, 0, 1, "b")},
		Farfield: square(-10, -10, 22, "f"),
	}
	if got := g.NumPoints(); got != 12 {
		t.Errorf("NumPoints = %d, want 12", got)
	}
}
