package sizing_test

import (
	"fmt"

	"pamg2d/internal/geom"
	"pamg2d/internal/sizing"
)

// ExampleK shows the paper's equation (1): the decoupling edge length for
// a target triangle area.
func ExampleK() {
	k := sizing.K(2.0) // target area 2
	fmt.Printf("k = %.4f\n", k)
	fmt.Printf("inverse: %.1f\n", sizing.AreaForEdge(k))
	// Output:
	// k = 0.5946
	// inverse: 2.0
}

// ExampleNewGraded builds the distance-based gradation the inviscid region
// uses: fine at the body, growing linearly, capped at the far field.
func ExampleNewGraded() {
	surface := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}
	g := sizing.NewGraded(surface, 0.01, 0.2, 1.0)
	fmt.Printf("at the surface:   h = %.2f\n", g.EdgeLength(geom.Pt(0, 0)))
	fmt.Printf("one unit away:    h = %.2f\n", g.EdgeLength(geom.Pt(0, 1)))
	fmt.Printf("in the far field: h = %.2f (capped)\n", g.EdgeLength(geom.Pt(0, 100)))
	// Output:
	// at the surface:   h = 0.01
	// one unit away:    h = 0.21
	// in the far field: h = 1.00 (capped)
}
