// Package sizing implements the sizing functions driving both the graded
// Delaunay decoupling of the inviscid region and Triangle-style area
// constraints during refinement, plus the k-formula (equation 1 of the
// paper) that converts a target area into the decoupling edge length.
package sizing

import (
	"math"

	"pamg2d/internal/geom"
)

// Func returns the target triangle area near a point. Implementations must
// be safe for concurrent use: every rank evaluates the sizing function
// independently during decoupling and refinement.
type Func func(geom.Point) float64

// K converts a target triangle area A into the decoupling edge length of
// equation (1): k = sqrt(A / sqrt(2)) / 2, derived from the termination
// bounds of Ruppert's Delaunay refinement so that independently refined
// subdomains stay globally Delaunay across the shared border.
func K(area float64) float64 {
	return 0.5 * math.Sqrt(area/math.Sqrt2)
}

// AreaForEdge is the inverse of K: the triangle area whose decoupling edge
// length is k.
func AreaForEdge(k float64) float64 {
	return 4 * k * k * math.Sqrt2
}

// Graded builds the paper's distance-based gradation: triangles have edge
// length H0 near the body surface, growing linearly with distance d at
// rate Gradation until capped at HMax near the far field. The target area
// is that of an equilateral triangle with the local edge length:
// sqrt(3)/4 * h^2.
type Graded struct {
	// Surface points used for the distance query.
	surface []geom.Point
	// grid buckets surface point indices in a dense row-major array of
	// (kmax-kmin+1) cells per dimension; a dense layout beats a map by a
	// large factor since Distance dominates decoupling and refinement.
	grid       [][]int32
	kmin, kmax [2]int
	nx, ny     int
	cell       float64
	H0         float64
	Gradation  float64
	HMax       float64
}

// NewGraded builds a graded sizing function from the body surface points.
// h0 is the surface edge length, gradation the growth per unit distance
// (0.2 means edges grow by 20% of the distance from the body), hmax the
// far-field cap.
func NewGraded(surface []geom.Point, h0, gradation, hmax float64) *Graded {
	g := &Graded{surface: surface, H0: h0, Gradation: gradation, HMax: hmax}
	bb := geom.BBoxOf(surface)
	g.cell = math.Max(bb.Width(), bb.Height()) / 64
	if g.cell <= 0 || math.IsInf(g.cell, 0) {
		g.cell = 1
	}
	g.kmin = [2]int{math.MaxInt32, math.MaxInt32}
	g.kmax = [2]int{math.MinInt32, math.MinInt32}
	keys := make([][2]int, len(surface))
	for i, p := range surface {
		key := g.key(p)
		keys[i] = key
		for d := 0; d < 2; d++ {
			if key[d] < g.kmin[d] {
				g.kmin[d] = key[d]
			}
			if key[d] > g.kmax[d] {
				g.kmax[d] = key[d]
			}
		}
	}
	if len(surface) == 0 {
		g.kmin = [2]int{0, 0}
		g.kmax = [2]int{0, 0}
	}
	g.nx = g.kmax[0] - g.kmin[0] + 1
	g.ny = g.kmax[1] - g.kmin[1] + 1
	g.grid = make([][]int32, g.nx*g.ny)
	for i, key := range keys {
		idx := (key[1]-g.kmin[1])*g.nx + (key[0] - g.kmin[0])
		g.grid[idx] = append(g.grid[idx], int32(i))
	}
	return g
}

func (g *Graded) key(p geom.Point) [2]int {
	return [2]int{int(math.Floor(p.X / g.cell)), int(math.Floor(p.Y / g.cell))}
}

// Distance returns the exact distance from p to the nearest surface point.
// The search expands Chebyshev rings of grid cells around p, skipping cells
// outside the populated grid range, and stops once no unscanned cell can
// hold a closer point.
func (g *Graded) Distance(p geom.Point) float64 {
	if len(g.surface) == 0 {
		return 0
	}
	kc := g.key(p)
	// The first ring that can contain populated cells.
	startRing := 0
	for d := 0; d < 2; d++ {
		if kc[d] < g.kmin[d] {
			if r := g.kmin[d] - kc[d]; r > startRing {
				startRing = r
			}
		}
		if kc[d] > g.kmax[d] {
			if r := kc[d] - g.kmax[d]; r > startRing {
				startRing = r
			}
		}
	}
	// The ring beyond which every populated cell has been scanned.
	lastRing := 0
	for d := 0; d < 2; d++ {
		if r := kc[d] - g.kmin[d]; r > lastRing {
			lastRing = r
		}
		if r := g.kmax[d] - kc[d]; r > lastRing {
			lastRing = r
		}
	}
	bestSq := math.Inf(1)
	// Far from the populated grid, the ring march would sweep hundreds of
	// mostly-empty shells before its lower bound catches up; a single pass
	// over all surface points is cheaper and exact.
	if startRing >= g.nx+g.ny {
		for _, q := range g.surface {
			dx := p.X - q.X
			dy := p.Y - q.Y
			if d := dx*dx + dy*dy; d < bestSq {
				bestSq = d
			}
		}
		return math.Sqrt(bestSq)
	}
	scan := func(cx, cy int) {
		if cx < g.kmin[0] || cx > g.kmax[0] || cy < g.kmin[1] || cy > g.kmax[1] {
			return
		}
		for _, idx := range g.grid[(cy-g.kmin[1])*g.nx+(cx-g.kmin[0])] {
			q := g.surface[idx]
			dx := p.X - q.X
			dy := p.Y - q.Y
			if d := dx*dx + dy*dy; d < bestSq {
				bestSq = d
			}
		}
	}
	for ring := startRing; ring <= lastRing; ring++ {
		if ring == 0 {
			scan(kc[0], kc[1])
		} else {
			// Clamp the shell loops to the populated cell range so far-away
			// query points do not pay for empty shell cells.
			x0, x1 := kc[0]-ring, kc[0]+ring
			if lo := g.kmin[0]; x0 < lo {
				x0 = lo
			}
			if hi := g.kmax[0]; x1 > hi {
				x1 = hi
			}
			for dx := x0; dx <= x1; dx++ {
				scan(dx, kc[1]-ring)
				scan(dx, kc[1]+ring)
			}
			y0, y1 := kc[1]-ring+1, kc[1]+ring-1
			if lo := g.kmin[1]; y0 < lo {
				y0 = lo
			}
			if hi := g.kmax[1]; y1 > hi {
				y1 = hi
			}
			for dy := y0; dy <= y1; dy++ {
				scan(kc[0]-ring, dy)
				scan(kc[0]+ring, dy)
			}
		}
		// Any point in an unscanned cell (Chebyshev cell distance >= ring+1)
		// is at least ring*cell away from p.
		if r := float64(ring) * g.cell; bestSq <= r*r {
			return math.Sqrt(bestSq)
		}
	}
	return math.Sqrt(bestSq)
}

// EdgeLength returns the target edge length at p.
func (g *Graded) EdgeLength(p geom.Point) float64 {
	h := g.H0 + g.Gradation*g.Distance(p)
	if g.HMax > 0 && h > g.HMax {
		h = g.HMax
	}
	return h
}

// Area returns the target triangle area at p (equilateral with the local
// edge length). It satisfies the sizing.Func contract.
func (g *Graded) Area(p geom.Point) float64 {
	h := g.EdgeLength(p)
	return math.Sqrt(3) / 4 * h * h
}

// Uniform returns a sizing function with a constant target area.
func Uniform(area float64) Func {
	return func(geom.Point) float64 { return area }
}
