package sizing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pamg2d/internal/geom"
)

func TestKFormula(t *testing.T) {
	// Equation (1): k = 0.5*sqrt(A/sqrt(2)).
	for _, area := range []float64{0.01, 1, 100} {
		k := K(area)
		want := 0.5 * math.Sqrt(area/math.Sqrt2)
		if math.Abs(k-want) > 1e-15 {
			t.Errorf("K(%v) = %v, want %v", area, k, want)
		}
	}
}

func TestKInverse(t *testing.T) {
	f := func(aRaw uint32) bool {
		a := 1e-6 + float64(aRaw)/1e3
		return math.Abs(AreaForEdge(K(a))-a) < 1e-9*a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func circleSurface(n int, r float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		th := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = geom.Pt(r*math.Cos(th), r*math.Sin(th))
	}
	return pts
}

func TestGradedDistance(t *testing.T) {
	surf := circleSurface(256, 1)
	g := NewGraded(surf, 0.01, 0.2, 1.0)
	cases := []struct {
		p    geom.Point
		want float64
		tol  float64
	}{
		{geom.Pt(2, 0), 1, 0.01},
		{geom.Pt(0, 3), 2, 0.01},
		{geom.Pt(1, 0), 0, 0.01},
		{geom.Pt(10, 0), 9, 0.05},
		{geom.Pt(-7, -7), math.Hypot(7, 7) - 1, 0.05},
	}
	for _, c := range cases {
		if got := g.Distance(c.p); math.Abs(got-c.want) > c.tol {
			t.Errorf("Distance(%v) = %v, want %v +- %v", c.p, got, c.want, c.tol)
		}
	}
}

func TestGradedDistanceMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	surf := make([]geom.Point, 300)
	for i := range surf {
		surf[i] = geom.Pt(rng.Float64()*4-2, rng.Float64()*2-1)
	}
	g := NewGraded(surf, 0.01, 0.2, 1.0)
	for trial := 0; trial < 300; trial++ {
		p := geom.Pt(rng.Float64()*40-20, rng.Float64()*40-20)
		want := math.Inf(1)
		for _, s := range surf {
			if d := p.Dist(s); d < want {
				want = d
			}
		}
		got := g.Distance(p)
		if math.Abs(got-want) > 1e-9*(want+1) {
			t.Fatalf("Distance(%v) = %v, brute force %v", p, got, want)
		}
	}
}

func TestGradedEdgeLengthGrowth(t *testing.T) {
	surf := circleSurface(128, 1)
	g := NewGraded(surf, 0.01, 0.2, 0.5)
	// On the surface: h0.
	if got := g.EdgeLength(geom.Pt(1, 0)); math.Abs(got-0.01) > 1e-3 {
		t.Errorf("surface edge length = %v, want ~0.01", got)
	}
	// One unit away: h0 + 0.2.
	if got := g.EdgeLength(geom.Pt(2, 0)); math.Abs(got-0.21) > 1e-2 {
		t.Errorf("d=1 edge length = %v, want ~0.21", got)
	}
	// Far away: capped at hmax.
	if got := g.EdgeLength(geom.Pt(100, 0)); got != 0.5 {
		t.Errorf("far edge length = %v, want 0.5 (capped)", got)
	}
	// Monotone non-decreasing along a ray.
	prev := 0.0
	for d := 1.0; d < 50; d += 0.5 {
		h := g.EdgeLength(geom.Pt(d, 0))
		if h < prev {
			t.Fatalf("edge length decreased at d=%v: %v < %v", d, h, prev)
		}
		prev = h
	}
}

func TestGradedArea(t *testing.T) {
	surf := circleSurface(128, 1)
	g := NewGraded(surf, 0.1, 0.2, 1.0)
	p := geom.Pt(1.5, 0)
	h := g.EdgeLength(p)
	want := math.Sqrt(3) / 4 * h * h
	if got := g.Area(p); math.Abs(got-want) > 1e-12 {
		t.Errorf("Area = %v, want %v", got, want)
	}
}

func TestUniform(t *testing.T) {
	f := Uniform(2.5)
	if f(geom.Pt(0, 0)) != 2.5 || f(geom.Pt(100, -3)) != 2.5 {
		t.Error("uniform sizing must be constant")
	}
}

func BenchmarkGradedDistance(b *testing.B) {
	surf := circleSurface(2048, 1)
	g := NewGraded(surf, 0.01, 0.2, 1.0)
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 1024)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*60-30, rng.Float64()*60-30)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Distance(pts[i%len(pts)])
	}
}
