package solver

import (
	"fmt"
	"math"
	"sort"

	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
)

// Derived fields for the Figure 14/15 proxies: the paper shows FUN3D
// pressure and Mach plots and discusses the stagnation points on each
// element. From the scalar solution u this file reconstructs cell
// gradients (Green-Gauss) and derives the analog quantities: treating u
// as a potential, the velocity proxy is -grad(u), the "Mach" proxy its
// magnitude, and the "pressure" proxy 1 - |v|^2 (incompressible Bernoulli
// with unit far-field speed). Stagnation points are the near-body cells
// where the speed proxy is smallest.

// Gradients reconstructs the cell-centered gradient of u with the
// Green-Gauss theorem: grad u ~ (1/A) * sum over faces of u_face * n * len,
// with u_face interpolated between the two adjacent cells weighted by the
// inverse distance of their centroids to the face midpoint (the cell value
// itself at boundaries).
func Gradients(m *mesh.Mesh, u []float64) ([]geom.Vec, error) {
	n := len(m.Triangles)
	if len(u) != n {
		return nil, fmt.Errorf("solver: %d values for %d cells", len(u), n)
	}
	adj := m.Adjacency()
	centroids := make([]geom.Point, n)
	for i, t := range m.Triangles {
		a, b, c := m.Points[t[0]], m.Points[t[1]], m.Points[t[2]]
		centroids[i] = geom.Pt((a.X+b.X+c.X)/3, (a.Y+b.Y+c.Y)/3)
	}
	grads := make([]geom.Vec, n)
	for i, t := range m.Triangles {
		a, b, c := m.Points[t[0]], m.Points[t[1]], m.Points[t[2]]
		area := math.Abs(geom.TriangleArea(a, b, c))
		if area == 0 {
			continue
		}
		var g geom.Vec
		for e := 0; e < 3; e++ {
			va, vb := t[e], t[(e+1)%3]
			pa, pb := m.Points[va], m.Points[vb]
			elen := pa.Dist(pb)
			normal := pb.Sub(pa).Perp().Neg().Unit() // outward for CCW
			mid := pa.Mid(pb)
			uf := u[i]
			if nb := adj[i][e]; nb >= 0 {
				di := centroids[i].Dist(mid)
				dn := centroids[nb].Dist(mid)
				if di+dn > 0 {
					w := dn / (di + dn)
					uf = w*u[i] + (1-w)*u[nb]
				} else {
					uf = (u[i] + u[nb]) / 2
				}
			}
			g = g.Add(normal.Scale(uf * elen))
		}
		grads[i] = g.Scale(1 / area)
	}
	return grads, nil
}

// FlowProxies are the derived per-cell fields standing in for the paper's
// pressure and Mach plots.
type FlowProxies struct {
	// Speed is |grad u| per cell (the Mach-number proxy).
	Speed []float64
	// Pressure is 1 - Speed^2 per cell (the Bernoulli pressure proxy).
	Pressure []float64
}

// Proxies derives the flow proxies from the scalar solution.
func Proxies(m *mesh.Mesh, u []float64) (*FlowProxies, error) {
	grads, err := Gradients(m, u)
	if err != nil {
		return nil, err
	}
	p := &FlowProxies{
		Speed:    make([]float64, len(grads)),
		Pressure: make([]float64, len(grads)),
	}
	for i, g := range grads {
		s := g.Len()
		p.Speed[i] = s
		p.Pressure[i] = 1 - s*s
	}
	return p, nil
}

// Stagnation identifies the k near-body cells with the lowest speed proxy
// — the stagnation points the paper discusses on each element's leading
// and trailing regions. isBody classifies a point as on/near the body
// surface; a cell qualifies when any of its vertices does.
func Stagnation(m *mesh.Mesh, speed []float64, isBody func(geom.Point) bool, k int) ([]geom.Point, error) {
	if len(speed) != len(m.Triangles) {
		return nil, fmt.Errorf("solver: %d speeds for %d cells", len(speed), len(m.Triangles))
	}
	type cand struct {
		c geom.Point
		s float64
	}
	var cands []cand
	for i, t := range m.Triangles {
		a, b, c := m.Points[t[0]], m.Points[t[1]], m.Points[t[2]]
		if !isBody(a) && !isBody(b) && !isBody(c) {
			continue
		}
		cands = append(cands, cand{
			c: geom.Pt((a.X+b.X+c.X)/3, (a.Y+b.Y+c.Y)/3),
			s: speed[i],
		})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].s < cands[j].s })
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]geom.Point, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].c
	}
	return out, nil
}
