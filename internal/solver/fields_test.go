package solver

import (
	"math"
	"testing"

	"pamg2d/internal/geom"
)

func TestGradientsLinearField(t *testing.T) {
	m := stripMesh(t, 0.01)
	// u = 3x - 2y: gradient (3, -2) everywhere.
	u := make([]float64, m.NumTriangles())
	for i, tri := range m.Triangles {
		a, b, c := m.Points[tri[0]], m.Points[tri[1]], m.Points[tri[2]]
		u[i] = 3*(a.X+b.X+c.X)/3 - 2*(a.Y+b.Y+c.Y)/3
	}
	grads, err := Gradients(m, u)
	if err != nil {
		t.Fatal(err)
	}
	// Interior cells must recover the gradient closely (boundary cells use
	// one-sided face values and are less accurate).
	good := 0
	for i, tri := range m.Triangles {
		a, b, c := m.Points[tri[0]], m.Points[tri[1]], m.Points[tri[2]]
		cx, cy := (a.X+b.X+c.X)/3, (a.Y+b.Y+c.Y)/3
		if cx < 0.15 || cx > 0.85 || cy < 0.15 || cy > 0.85 {
			continue
		}
		if math.Abs(grads[i].X-3) < 0.5 && math.Abs(grads[i].Y+2) < 0.5 {
			good++
		}
	}
	if good < 10 {
		t.Errorf("only %d interior cells recovered the linear gradient", good)
	}
}

func TestGradientsSizeMismatch(t *testing.T) {
	m := stripMesh(t, 0.05)
	if _, err := Gradients(m, make([]float64, 1)); err == nil {
		t.Error("size mismatch must fail")
	}
}

func TestProxiesBernoulli(t *testing.T) {
	m := stripMesh(t, 0.02)
	// u = x: speed 1 everywhere, pressure 0.
	u := make([]float64, m.NumTriangles())
	for i, tri := range m.Triangles {
		a, b, c := m.Points[tri[0]], m.Points[tri[1]], m.Points[tri[2]]
		u[i] = (a.X + b.X + c.X) / 3
	}
	p, err := Proxies(m, u)
	if err != nil {
		t.Fatal(err)
	}
	mid := 0
	for i, tri := range m.Triangles {
		a, b, c := m.Points[tri[0]], m.Points[tri[1]], m.Points[tri[2]]
		cx, cy := (a.X+b.X+c.X)/3, (a.Y+b.Y+c.Y)/3
		if cx > 0.3 && cx < 0.7 && cy > 0.3 && cy < 0.7 {
			if math.Abs(p.Speed[i]-1) > 0.45 || math.Abs(p.Pressure[i]) > 1.0 {
				t.Fatalf("cell %d: speed %v pressure %v, want ~1 and ~0", i, p.Speed[i], p.Pressure[i])
			}
			mid++
		}
	}
	if mid == 0 {
		t.Fatal("no interior cells sampled")
	}
}

func TestStagnationFindsQuietCorner(t *testing.T) {
	m := stripMesh(t, 0.01)
	// Speed field lowest near the corner (0,0).
	speed := make([]float64, m.NumTriangles())
	for i, tri := range m.Triangles {
		a, b, c := m.Points[tri[0]], m.Points[tri[1]], m.Points[tri[2]]
		cx, cy := (a.X+b.X+c.X)/3, (a.Y+b.Y+c.Y)/3
		speed[i] = math.Hypot(cx, cy)
	}
	// "Body" is the bottom edge y=0.
	isBody := func(p geom.Point) bool { return p.Y < 1e-9 }
	pts, err := Stagnation(m, speed, isBody, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("stagnation points = %d", len(pts))
	}
	// The quietest body cell must be near the origin corner.
	if pts[0].Dist(geom.Pt(0, 0)) > 0.3 {
		t.Errorf("first stagnation point %v not near the quiet corner", pts[0])
	}
	if _, err := Stagnation(m, speed[:1], isBody, 1); err == nil {
		t.Error("size mismatch must fail")
	}
}
