// Package solver is the flow-solver substitute for the paper's FUN3D runs
// (Figures 14-16): a cell-centered finite-volume discretization of the
// steady scalar convection-diffusion equation on unstructured triangle
// meshes, solved by damped Jacobi or Gauss-Seidel sweeps with a recorded
// residual history. Figure 16 compares iterations-to-convergence of the
// same problem on the anisotropic mesh versus the isotropic mesh; the
// phenomenon it shows — the anisotropic mesh converging in roughly half
// the iterations while carrying an order of magnitude fewer elements — is
// a property of the mesh pair, which this solver reproduces.
package solver

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
)

// BC prescribes the boundary condition at a boundary-edge midpoint:
// a Dirichlet value when ok is true, otherwise a zero-flux (Neumann) wall.
type BC func(mid geom.Point) (value float64, ok bool)

// Problem is a steady convection-diffusion problem on a triangle mesh:
//
//	div(V u) - div(D grad u) = 0
//
// with Dirichlet or zero-flux boundary conditions.
type Problem struct {
	Mesh *mesh.Mesh
	// Diffusivity D > 0.
	Diffusivity float64
	// Velocity V is the constant convection field (zero for pure
	// diffusion).
	Velocity geom.Vec
	// Boundary supplies boundary conditions.
	Boundary BC
}

// Method selects the iteration.
type Method int

const (
	// Jacobi iteration (the convergence-history baseline).
	Jacobi Method = iota
	// GaussSeidel converges roughly twice as fast per sweep.
	GaussSeidel
	// SOR is Gauss-Seidel with over-relaxation (Options.Omega).
	SOR
)

// Options controls the iterative solve.
type Options struct {
	// Tol is the relative residual stopping tolerance (the paper's Figure
	// 16 uses 1e-12).
	Tol float64
	// MaxIters caps the sweeps.
	MaxIters int
	// Method selects Jacobi, Gauss-Seidel or SOR.
	Method Method
	// Omega is the SOR relaxation factor (1 < Omega < 2 accelerates,
	// Omega = 1 reduces to Gauss-Seidel). Ignored by other methods.
	Omega float64
}

// DefaultOptions mirrors the paper's convergence study setup.
func DefaultOptions() Options {
	return Options{Tol: 1e-12, MaxIters: 200000, Method: GaussSeidel}
}

// History records the convergence behaviour.
type History struct {
	// Residuals holds the relative residual after each sweep.
	Residuals  []float64
	Iterations int
	Converged  bool
}

// Solution is the converged cell-centered field with summary statistics
// (the quantitative proxy for the field plots of Figures 14-15).
type Solution struct {
	U       []float64
	Min     float64
	Max     float64
	Mean    float64
	History History
}

type face struct {
	nb    int32   // neighbor cell, -1 for boundary
	coeff float64 // diffusive coefficient D*len/dist
	conv  float64 // signed convective flux V.n*len out of the cell
	bval  float64 // Dirichlet value for boundary faces
	bdir  bool    // true when the boundary face is Dirichlet
}

// Solve assembles and iterates the problem.
func Solve(p Problem, opt Options) (*Solution, error) {
	m := p.Mesh
	n := len(m.Triangles)
	if n == 0 {
		return nil, fmt.Errorf("solver: empty mesh")
	}
	if p.Diffusivity <= 0 {
		return nil, fmt.Errorf("solver: diffusivity must be positive")
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-12
	}
	if opt.MaxIters <= 0 {
		opt.MaxIters = 200000
	}

	centroids := make([]geom.Point, n)
	for i, t := range m.Triangles {
		a, b, c := m.Points[t[0]], m.Points[t[1]], m.Points[t[2]]
		centroids[i] = geom.Pt((a.X+b.X+c.X)/3, (a.Y+b.Y+c.Y)/3)
	}

	adj := m.Adjacency()
	faces := make([][]face, n)
	hasDirichlet := false
	for i, t := range m.Triangles {
		for e := 0; e < 3; e++ {
			va, vb := t[e], t[(e+1)%3]
			pa, pb := m.Points[va], m.Points[vb]
			elen := pa.Dist(pb)
			// Outward normal of a CCW triangle's edge.
			normal := pb.Sub(pa).Perp().Neg().Unit()
			convFlux := p.Velocity.Dot(normal) * elen
			if nb := adj[i][e]; nb >= 0 {
				d := centroids[i].Dist(centroids[nb])
				if d == 0 {
					d = elen
				}
				faces[i] = append(faces[i], face{
					nb:    nb,
					coeff: p.Diffusivity * elen / d,
					conv:  convFlux,
				})
				continue
			}
			// Boundary face.
			mid := pa.Mid(pb)
			f := face{nb: -1, conv: convFlux}
			if p.Boundary != nil {
				if v, ok := p.Boundary(mid); ok {
					d := centroids[i].Dist(mid)
					if d == 0 {
						d = elen / 2
					}
					f.coeff = p.Diffusivity * elen / d
					f.bval = v
					f.bdir = true
					hasDirichlet = true
				}
			}
			faces[i] = append(faces[i], f)
		}
	}
	if !hasDirichlet {
		return nil, fmt.Errorf("solver: no Dirichlet boundary anywhere; the problem is singular")
	}

	u := make([]float64, n)
	unew := u
	if opt.Method == Jacobi {
		unew = make([]float64, n)
	}
	omega := opt.Omega
	if opt.Method != SOR || omega <= 0 {
		omega = 1
	}

	hist := History{}
	var res0 float64
	for it := 0; it < opt.MaxIters; it++ {
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			var diag, rhs float64
			for _, f := range faces[i] {
				if f.nb >= 0 {
					diag += f.coeff
					var unb float64
					if opt.Method == Jacobi {
						unb = u[f.nb]
					} else {
						unb = unew[f.nb]
					}
					rhs += f.coeff * unb
					// First-order upwind convection.
					if f.conv > 0 {
						diag += f.conv
					} else {
						rhs += -f.conv * unb
					}
				} else if f.bdir {
					diag += f.coeff
					rhs += f.coeff * f.bval
					if f.conv > 0 {
						diag += f.conv
					} else {
						rhs += -f.conv * f.bval
					}
				} else {
					// Zero-flux wall: only outgoing convection leaves.
					if f.conv > 0 {
						diag += f.conv
					}
				}
			}
			if diag == 0 {
				continue
			}
			val := rhs / diag
			if omega != 1 {
				val = unew[i] + omega*(val-unew[i])
			}
			if d := math.Abs(val - u[i]); d > maxDelta {
				maxDelta = d
			}
			unew[i] = val
		}
		if opt.Method == Jacobi {
			u, unew = unew, u
		}
		if it == 0 {
			res0 = maxDelta
			if res0 == 0 {
				res0 = 1
			}
		}
		rel := maxDelta / res0
		hist.Residuals = append(hist.Residuals, rel)
		hist.Iterations = it + 1
		if rel < opt.Tol {
			hist.Converged = true
			break
		}
	}

	sol := &Solution{U: u, Min: math.Inf(1), Max: math.Inf(-1), History: hist}
	var sum float64
	for _, v := range u {
		if v < sol.Min {
			sol.Min = v
		}
		if v > sol.Max {
			sol.Max = v
		}
		sum += v
	}
	sol.Mean = sum / float64(n)
	return sol, nil
}

// AirfoilBC returns the Figure 16 style boundary conditions: unit value on
// the body surface (points within maxBodyDist of the surface sampler),
// zero at the far field.
func AirfoilBC(isBody func(geom.Point) bool) BC {
	return func(mid geom.Point) (float64, bool) {
		if isBody(mid) {
			return 1, true
		}
		return 0, true
	}
}

// WriteCSV writes the residual history as "iteration,residual" rows for
// plotting the Figure 16 convergence curves.
func (h *History) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "iteration,residual"); err != nil {
		return err
	}
	for i, r := range h.Residuals {
		fmt.Fprintf(bw, "%d,%.17g\n", i+1, r)
	}
	return bw.Flush()
}
