package solver

import (
	"math"
	"testing"

	"pamg2d/internal/delaunay"
	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
)

// stripMesh triangulates the unit square [0,1]x[0,1] at the given target
// area.
func stripMesh(t testing.TB, maxArea float64) *mesh.Mesh {
	t.Helper()
	in := delaunay.Input{
		Points:   []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)},
		Segments: [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	res, err := delaunay.TriangulateRefined(in, delaunay.Quality{MaxRadiusEdgeRatio: math.Sqrt2, MaxArea: maxArea})
	if err != nil {
		t.Fatal(err)
	}
	b := mesh.NewBuilder()
	for _, tri := range res.Triangles {
		b.AddTriangle(res.Points[tri[0]], res.Points[tri[1]], res.Points[tri[2]])
	}
	return b.Mesh()
}

// linearBC imposes u = x on the whole boundary; the exact steady diffusion
// solution is u = x everywhere.
func linearBC(mid geom.Point) (float64, bool) { return mid.X, true }

func TestDiffusionReproducesLinearField(t *testing.T) {
	m := stripMesh(t, 0.01)
	sol, err := Solve(Problem{Mesh: m, Diffusivity: 1, Boundary: linearBC},
		Options{Tol: 1e-12, MaxIters: 100000, Method: GaussSeidel})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.History.Converged {
		t.Fatalf("did not converge in %d iterations", sol.History.Iterations)
	}
	// Compare cell values against the exact solution at centroids.
	for i, tri := range m.Triangles {
		a, b, c := m.Points[tri[0]], m.Points[tri[1]], m.Points[tri[2]]
		x := (a.X + b.X + c.X) / 3
		if math.Abs(sol.U[i]-x) > 0.05 {
			t.Fatalf("cell %d: u=%v, exact=%v", i, sol.U[i], x)
		}
	}
	if sol.Min < -0.01 || sol.Max > 1.01 {
		t.Errorf("solution out of [0,1]: [%v, %v]", sol.Min, sol.Max)
	}
}

func TestMaximumPrinciple(t *testing.T) {
	// Dirichlet 0/1 boundary: interior values must stay within [0,1].
	m := stripMesh(t, 0.02)
	bc := func(mid geom.Point) (float64, bool) {
		if mid.Y < 0.5 {
			return 0, true
		}
		return 1, true
	}
	sol, err := Solve(Problem{Mesh: m, Diffusivity: 1, Boundary: bc}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Min < -1e-9 || sol.Max > 1+1e-9 {
		t.Errorf("maximum principle violated: [%v, %v]", sol.Min, sol.Max)
	}
}

func TestResidualsMonotoneDecay(t *testing.T) {
	m := stripMesh(t, 0.02)
	sol, err := Solve(Problem{Mesh: m, Diffusivity: 1, Boundary: linearBC},
		Options{Tol: 1e-12, MaxIters: 50000, Method: Jacobi})
	if err != nil {
		t.Fatal(err)
	}
	rs := sol.History.Residuals
	if len(rs) < 10 {
		t.Fatal("history too short")
	}
	// Residuals decay overall (allow small local non-monotonicity).
	if rs[len(rs)-1] >= rs[0] {
		t.Errorf("no decay: first %v last %v", rs[0], rs[len(rs)-1])
	}
	mid := rs[len(rs)/2]
	if mid >= rs[0] || rs[len(rs)-1] >= mid {
		t.Errorf("decay not progressive: %v -> %v -> %v", rs[0], mid, rs[len(rs)-1])
	}
}

func TestGaussSeidelFasterThanJacobi(t *testing.T) {
	m := stripMesh(t, 0.02)
	gs, err := Solve(Problem{Mesh: m, Diffusivity: 1, Boundary: linearBC},
		Options{Tol: 1e-10, MaxIters: 100000, Method: GaussSeidel})
	if err != nil {
		t.Fatal(err)
	}
	ja, err := Solve(Problem{Mesh: m, Diffusivity: 1, Boundary: linearBC},
		Options{Tol: 1e-10, MaxIters: 100000, Method: Jacobi})
	if err != nil {
		t.Fatal(err)
	}
	if !gs.History.Converged || !ja.History.Converged {
		t.Fatal("both methods must converge")
	}
	if gs.History.Iterations >= ja.History.Iterations {
		t.Errorf("Gauss-Seidel (%d iters) not faster than Jacobi (%d)",
			gs.History.Iterations, ja.History.Iterations)
	}
}

func TestCoarseConvergesFasterThanFine(t *testing.T) {
	// The Figure 16 phenomenon at its core: the mesh with fewer elements
	// reaches the tolerance in fewer sweeps.
	coarse := stripMesh(t, 0.02)
	fine := stripMesh(t, 0.002)
	if fine.NumTriangles() < 4*coarse.NumTriangles() {
		t.Fatalf("test setup: fine mesh only %dx larger", fine.NumTriangles()/coarse.NumTriangles())
	}
	opt := Options{Tol: 1e-10, MaxIters: 200000, Method: GaussSeidel}
	sc, err := Solve(Problem{Mesh: coarse, Diffusivity: 1, Boundary: linearBC}, opt)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := Solve(Problem{Mesh: fine, Diffusivity: 1, Boundary: linearBC}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sc.History.Iterations >= sf.History.Iterations {
		t.Errorf("coarse mesh took %d iterations, fine %d; want coarse < fine",
			sc.History.Iterations, sf.History.Iterations)
	}
}

func TestConvectionUpwindStability(t *testing.T) {
	// Strong convection to the right with inflow 1: the solution must stay
	// bounded in [0, 1] thanks to upwinding.
	m := stripMesh(t, 0.01)
	bc := func(mid geom.Point) (float64, bool) {
		if mid.X < 1e-9 {
			return 1, true // inflow
		}
		if mid.X > 1-1e-9 {
			return 0, true // outflow value (weakly imposed by upwinding)
		}
		return 0, false // slip walls top/bottom
	}
	sol, err := Solve(Problem{Mesh: m, Diffusivity: 0.01, Velocity: geom.V(5, 0), Boundary: bc},
		Options{Tol: 1e-10, MaxIters: 100000, Method: GaussSeidel})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Min < -1e-6 || sol.Max > 1+1e-6 {
		t.Errorf("upwind solution unbounded: [%v, %v]", sol.Min, sol.Max)
	}
	// Convection pushes the u=1 front to the right: cells near x=0.7 must
	// see values well above the pure-diffusion profile (1-x would give 0.3).
	for i, tri := range m.Triangles {
		a, b, c := m.Points[tri[0]], m.Points[tri[1]], m.Points[tri[2]]
		x := (a.X + b.X + c.X) / 3
		y := (a.Y + b.Y + c.Y) / 3
		if x > 0.6 && x < 0.8 && y > 0.3 && y < 0.7 {
			if sol.U[i] < 0.5 {
				t.Errorf("cell %d at (%.2f,%.2f): u=%v, convection should carry ~1 downstream", i, x, y, sol.U[i])
			}
			break
		}
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(Problem{Mesh: &mesh.Mesh{}, Diffusivity: 1}, DefaultOptions()); err == nil {
		t.Error("empty mesh must fail")
	}
	m := stripMesh(t, 0.1)
	if _, err := Solve(Problem{Mesh: m, Diffusivity: 0, Boundary: linearBC}, DefaultOptions()); err == nil {
		t.Error("zero diffusivity must fail")
	}
	neumannOnly := func(geom.Point) (float64, bool) { return 0, false }
	if _, err := Solve(Problem{Mesh: m, Diffusivity: 1, Boundary: neumannOnly}, DefaultOptions()); err == nil {
		t.Error("all-Neumann problem must be rejected as singular")
	}
}

func BenchmarkSolveGaussSeidel(b *testing.B) {
	m := stripMesh(b, 0.001)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(Problem{Mesh: m, Diffusivity: 1, Boundary: linearBC},
			Options{Tol: 1e-8, MaxIters: 100000, Method: GaussSeidel}); err != nil {
			b.Fatal(err)
		}
	}
}
