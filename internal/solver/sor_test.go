package solver

import (
	"bytes"
	"strings"
	"testing"

	"pamg2d/internal/geom"
)

func TestSORBeatsGaussSeidel(t *testing.T) {
	m := stripMesh(t, 0.005)
	gs, err := Solve(Problem{Mesh: m, Diffusivity: 1, Boundary: linearBC},
		Options{Tol: 1e-10, MaxIters: 200000, Method: GaussSeidel})
	if err != nil {
		t.Fatal(err)
	}
	sor, err := Solve(Problem{Mesh: m, Diffusivity: 1, Boundary: linearBC},
		Options{Tol: 1e-10, MaxIters: 200000, Method: SOR, Omega: 1.7})
	if err != nil {
		t.Fatal(err)
	}
	if !sor.History.Converged {
		t.Fatal("SOR did not converge")
	}
	if sor.History.Iterations >= gs.History.Iterations {
		t.Errorf("SOR(1.7) took %d iterations, Gauss-Seidel %d; over-relaxation should win on a diffusion problem",
			sor.History.Iterations, gs.History.Iterations)
	}
	// Same answer.
	for i := range sor.U {
		if d := sor.U[i] - gs.U[i]; d > 1e-6 || d < -1e-6 {
			t.Fatalf("cell %d: SOR %v vs GS %v", i, sor.U[i], gs.U[i])
		}
	}
}

func TestSOROmegaOneEqualsGS(t *testing.T) {
	m := stripMesh(t, 0.02)
	gs, err := Solve(Problem{Mesh: m, Diffusivity: 1, Boundary: linearBC},
		Options{Tol: 1e-10, MaxIters: 100000, Method: GaussSeidel})
	if err != nil {
		t.Fatal(err)
	}
	sor, err := Solve(Problem{Mesh: m, Diffusivity: 1, Boundary: linearBC},
		Options{Tol: 1e-10, MaxIters: 100000, Method: SOR, Omega: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sor.History.Iterations != gs.History.Iterations {
		t.Errorf("SOR(1) %d iterations != Gauss-Seidel %d", sor.History.Iterations, gs.History.Iterations)
	}
}

func TestSORStaysBounded(t *testing.T) {
	m := stripMesh(t, 0.02)
	bc := func(mid geom.Point) (float64, bool) {
		if mid.X < 0.5 {
			return 0, true
		}
		return 1, true
	}
	sol, err := Solve(Problem{Mesh: m, Diffusivity: 1, Boundary: bc},
		Options{Tol: 1e-10, MaxIters: 200000, Method: SOR, Omega: 1.8})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Min < -1e-6 || sol.Max > 1+1e-6 {
		t.Errorf("SOR solution out of bounds: [%v, %v]", sol.Min, sol.Max)
	}
}

func TestHistoryCSV(t *testing.T) {
	h := History{Residuals: []float64{1, 0.1, 0.01}}
	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 || lines[0] != "iteration,residual" {
		t.Fatalf("csv: %q", buf.String())
	}
	if !strings.HasPrefix(lines[3], "3,") {
		t.Errorf("last row %q", lines[3])
	}
}
