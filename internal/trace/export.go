package trace

// Chrome trace-event export. The output is the JSON object format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
// that chrome://tracing and Perfetto's legacy-JSON importer both load:
// one "process" per rank (pid rank+1, pid 0 for root-side pipeline work),
// two "threads" per process — mesher (execution) and comm (protocol) —
// and flow events linking each steal's departure to its arrival.
//
// WriteTrace must only be called after the traced run has quiesced; the
// recorder's buffers are read without synchronization against writers.

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// Display thread ids within each rank process.
const (
	tidMesher = 1 // stages, tasks, audit checks, idle waits
	tidComm   = 2 // steal protocol, MPI sends, counters
)

// tidFor maps an event category to its display thread.
func tidFor(cat string) int {
	switch cat {
	case CatSteal, CatMPI:
		return tidComm
	}
	return tidMesher
}

// jsonEvent is one trace event in Chrome's JSON schema. Numeric ids are
// emitted as integers; timestamps and durations are microseconds.
type jsonEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   uint64         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// jsonTrace is the exported file: the object form with traceEvents, which
// both Chrome and Perfetto accept (and which leaves room for metadata).
type jsonTrace struct {
	TraceEvents     []jsonEvent `json:"traceEvents"`
	DisplayTimeUnit string      `json:"displayTimeUnit"`
}

// WriteTrace writes the recorded run as Chrome trace-event JSON. Events
// are globally sorted by timestamp, so every per-track sequence is
// non-decreasing — the property the schema tests lock in. Safe on a nil
// tracer (writes an empty, still-loadable trace).
func (t *Tracer) WriteTrace(w io.Writer) error {
	out := jsonTrace{DisplayTimeUnit: "ms", TraceEvents: []jsonEvent{}}
	type rankEvent struct {
		e    event
		rank int
	}
	var evs []rankEvent
	nranks := 0
	if t != nil {
		nranks = t.nranks
		for bi, b := range t.bufs {
			rank := bi - 1
			b.mu.Lock()
			for _, c := range b.chunks {
				k := int(c.n.Load())
				if k > chunkSize {
					k = chunkSize
				}
				for i := 0; i < k; i++ {
					evs = append(evs, rankEvent{e: c.events[i], rank: rank})
				}
			}
			b.mu.Unlock()
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].e.ts < evs[j].e.ts })

	// Metadata: name the processes and threads so the viewer labels the
	// tracks; sort indices keep root first and ranks in order.
	meta := func(pid int, kind, name string, tid int) {
		out.TraceEvents = append(out.TraceEvents, jsonEvent{
			Name: kind, Ph: "M", PID: pid, TID: tid, Args: map[string]any{"name": name},
		})
	}
	sortIdx := func(pid int) {
		out.TraceEvents = append(out.TraceEvents, jsonEvent{
			Name: "process_sort_index", Ph: "M", PID: pid,
			Args: map[string]any{"sort_index": pid},
		})
	}
	meta(0, "process_name", "root (pipeline)", 0)
	sortIdx(0)
	meta(0, "thread_name", "stages", tidMesher)
	for r := 0; r < nranks; r++ {
		pid := r + 1
		meta(pid, "process_name", "rank "+strconv.Itoa(r), 0)
		sortIdx(pid)
		meta(pid, "thread_name", "mesher", tidMesher)
		meta(pid, "thread_name", "comm", tidComm)
	}

	for _, re := range evs {
		je := jsonEvent{
			Name: re.e.name,
			Cat:  re.e.cat,
			Ph:   string(rune(re.e.ph)),
			TS:   float64(re.e.ts) / 1e3,
			PID:  re.rank + 1,
			TID:  tidFor(re.e.cat),
		}
		switch re.e.ph {
		case phSpan:
			d := float64(re.e.dur) / 1e3
			je.Dur = &d
		case phInstant:
			je.S = "t" // thread-scoped instant
		case phFlowOut:
			je.ID = re.e.id
		case phFlowIn:
			je.ID = re.e.id
			je.BP = "e" // bind to the enclosing slice
		}
		if len(re.e.args) > 0 {
			je.Args = make(map[string]any, len(re.e.args))
			for _, a := range re.e.args {
				je.Args[a.Key] = a.Val
			}
		}
		out.TraceEvents = append(out.TraceEvents, je)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
