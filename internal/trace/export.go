package trace

// Chrome trace-event export. The output is the JSON object format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
// that chrome://tracing and Perfetto's legacy-JSON importer both load:
// one "process" per rank (pid rank+1, pid 0 for root-side pipeline work),
// two "threads" per process — mesher (execution) and comm (protocol) —
// and flow events linking each steal's departure to its arrival.
//
// WriteTrace must only be called after the traced run has quiesced; the
// recorder's buffers are read without synchronization against writers.

import "io"

// Display thread ids within each rank process.
const (
	tidMesher = 1 // stages, tasks, audit checks, idle waits
	tidComm   = 2 // steal protocol, MPI sends, counters
)

// tidFor maps an event category to its display thread.
func tidFor(cat string) int {
	switch cat {
	case CatSteal, CatMPI:
		return tidComm
	}
	return tidMesher
}

// jsonEvent is one trace event in Chrome's JSON schema. Numeric ids are
// emitted as integers; timestamps and durations are microseconds.
type jsonEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   uint64         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// jsonTrace is the exported file: the object form with traceEvents, which
// both Chrome and Perfetto accept. Metadata carries the merged export's
// run-level record (transport, per-rank clock offsets); single-process
// exports omit it.
type jsonTrace struct {
	TraceEvents     []jsonEvent    `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

// WriteTrace writes the recorded run as Chrome trace-event JSON: the
// single-process case of WriteMergedTrace (one snapshot, no clock
// rebasing, no metadata object). Events are globally sorted by
// timestamp, so every per-track sequence is non-decreasing — the
// property the schema tests lock in. Safe on a nil tracer (writes an
// empty, still-loadable trace).
func (t *Tracer) WriteTrace(w io.Writer) error {
	return WriteMergedTrace(w, []*Telemetry{t.Export(0)}, nil, "")
}
