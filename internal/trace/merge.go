package trace

// Cross-process trace merge. WriteMergedTrace folds the Telemetry
// snapshots of every process in a run into one Chrome trace-event file:
// each worker rank's track lands in its own pid, worker-side stage spans
// get a dedicated "stages" thread inside the rank's process (stage skew
// across processes becomes visible), and every remote timestamp is
// rebased into the launcher's clock with the per-rank offsets estimated
// by the fabric's ping exchange. The offsets themselves are recorded in
// the file's metadata object so a timeline can be audited after the
// fact.
//
// Determinism: snapshots are consumed in ascending host-rank order and
// the final ordering is a stable sort on the rebased timestamp, so the
// same inputs always produce byte-identical output (encoding/json
// already emits map keys sorted).

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// tidStages is the display thread for a worker process's own stage spans
// in a merged trace. Each process runs the SPMD pipeline redundantly, so
// every rank records root-track stage spans; in the merge they move into
// the rank's process under this thread instead of colliding with the
// launcher's root track.
const tidStages = 3

// RankClock is one rank's clock alignment against the merging process:
// adding OffsetNS to a timestamp recorded in that rank's tracer yields
// the equivalent timestamp in the merger's tracer. RTTNS is the ping
// round-trip the estimate was taken from (its error bound).
type RankClock struct {
	Rank     int
	OffsetNS int64
	RTTNS    int64
}

// WriteMergedTrace writes the given telemetry snapshots as one Chrome
// trace-event file. clocks carries the per-rank offsets used to rebase
// remote timestamps (ranks without an entry rebase by zero — correct for
// the merger's own snapshot); transport, when non-empty, is recorded in
// the trace metadata alongside the offsets. Rebased timestamps are
// clamped at zero so a slightly-early remote event cannot fail the
// exporter's monotonicity-from-zero invariant.
func WriteMergedTrace(w io.Writer, telems []*Telemetry, clocks []RankClock, transport string) error {
	offsetOf := make(map[int]int64, len(clocks))
	for _, c := range clocks {
		offsetOf[c.Rank] = c.OffsetNS
	}

	ordered := make([]*Telemetry, 0, len(telems))
	for _, tel := range telems {
		if tel != nil {
			ordered = append(ordered, tel)
		}
	}
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Rank < ordered[j].Rank })

	type placedEvent struct {
		e   Event
		pid int
		tid int
	}
	var evs []placedEvent
	nranks := 0
	stageRanks := make(map[int]bool) // worker hosts whose stage track survived
	for _, tel := range ordered {
		if tel.Ranks > nranks {
			nranks = tel.Ranks
		}
		off := offsetOf[tel.Rank]
		for _, tr := range tel.Tracks {
			rootTrack := tr.Rank < 0
			pid := tr.Rank + 1
			if rootTrack {
				if tel.Rank == 0 {
					pid = 0
				} else {
					pid = tel.Rank + 1
					if len(tr.Events) > 0 {
						stageRanks[tel.Rank] = true
					}
				}
			}
			for _, e := range tr.Events {
				e.TS += off
				if e.TS < 0 {
					e.TS = 0
				}
				tid := tidFor(e.Cat)
				if rootTrack && tel.Rank != 0 {
					tid = tidStages
				}
				evs = append(evs, placedEvent{e: e, pid: pid, tid: tid})
			}
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].e.TS < evs[j].e.TS })

	out := jsonTrace{DisplayTimeUnit: "ms", TraceEvents: []jsonEvent{}}
	if transport != "" || len(clocks) > 0 {
		md := map[string]any{}
		if transport != "" {
			md["transport"] = transport
		}
		if len(clocks) > 0 {
			offs := map[string]any{}
			rtts := map[string]any{}
			for _, c := range clocks {
				key := strconv.Itoa(c.Rank)
				offs[key] = c.OffsetNS
				rtts[key] = c.RTTNS
			}
			md["clock_offsets_ns"] = offs
			md["clock_rtt_ns"] = rtts
		}
		out.Metadata = md
	}

	// Metadata events: name the processes and threads so the viewer
	// labels the tracks; sort indices keep root first and ranks in order.
	meta := func(pid int, kind, name string, tid int) {
		out.TraceEvents = append(out.TraceEvents, jsonEvent{
			Name: kind, Ph: "M", PID: pid, TID: tid, Args: map[string]any{"name": name},
		})
	}
	sortIdx := func(pid int) {
		out.TraceEvents = append(out.TraceEvents, jsonEvent{
			Name: "process_sort_index", Ph: "M", PID: pid,
			Args: map[string]any{"sort_index": pid},
		})
	}
	meta(0, "process_name", "root (pipeline)", 0)
	sortIdx(0)
	meta(0, "thread_name", "stages", tidMesher)
	for r := 0; r < nranks; r++ {
		pid := r + 1
		meta(pid, "process_name", "rank "+strconv.Itoa(r), 0)
		sortIdx(pid)
		meta(pid, "thread_name", "mesher", tidMesher)
		meta(pid, "thread_name", "comm", tidComm)
		if stageRanks[r] {
			meta(pid, "thread_name", "stages", tidStages)
		}
	}

	for _, pe := range evs {
		je := jsonEvent{
			Name: pe.e.Name,
			Cat:  pe.e.Cat,
			Ph:   string(rune(pe.e.Ph)),
			TS:   float64(pe.e.TS) / 1e3,
			PID:  pe.pid,
			TID:  pe.tid,
		}
		switch pe.e.Ph {
		case phSpan:
			d := float64(pe.e.Dur) / 1e3
			je.Dur = &d
		case phInstant:
			je.S = "t" // thread-scoped instant
		case phFlowOut:
			je.ID = pe.e.ID
		case phFlowIn:
			je.ID = pe.e.ID
			je.BP = "e" // bind to the enclosing slice
		}
		if len(pe.e.Args) > 0 {
			je.Args = make(map[string]any, len(pe.e.Args))
			for _, a := range pe.e.Args {
				je.Args[a.Key] = a.Val
			}
		}
		out.TraceEvents = append(out.TraceEvents, je)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
