package trace

// The run-metrics registry: a compact counters/gauges/histograms store
// exported as one JSON document next to the trace. Where the trace
// answers "what happened when", the registry answers "how much overall":
// tasks per rank, steal totals, queue depth distribution, pool hit rate.
// A nil *Metrics is the disabled registry — every method no-ops — so
// instrumented code can write m.Count(...) unconditionally behind the
// tracer's nil check.

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
)

// MetricsSchema identifies the exported document format; the validator
// and the schema tests pin it.
const MetricsSchema = "pamg2d-metrics/1"

// Metrics is the registry. The zero value is not usable; create with
// NewMetrics (or reach the one attached to a Tracer via Tracer.Metrics).
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*histogram
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*histogram),
	}
}

// Count adds delta to the named monotonic counter.
func (m *Metrics) Count(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Gauge sets the named gauge to its latest value.
func (m *Metrics) Gauge(name string, val float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] = val
	m.mu.Unlock()
}

// Observe records one sample into the named histogram. Buckets are
// power-of-two boundaries over the sample's binary exponent, so one
// histogram shape serves seconds, bytes, and counts alike.
func (m *Metrics) Observe(name string, val float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = &histogram{buckets: make(map[int]int64)}
		m.hists[name] = h
	}
	h.observe(val)
	m.mu.Unlock()
}

// histogram accumulates samples into log2 buckets: a sample v lands in
// the bucket whose upper boundary is the smallest power of two >= v.
type histogram struct {
	count    int64
	sum      float64
	min, max float64
	buckets  map[int]int64
}

// minExp floors the bucket exponent so denormals and zero collapse into
// one underflow bucket instead of producing thousands of empty ones.
const minExp = -40

func bucketExp(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return minExp
	}
	e := math.Ilogb(v)
	// Ilogb(2^e) == e, but 2^e belongs to the bucket with boundary 2^e,
	// so exact powers of two step one bucket down.
	if math.Ldexp(1, e) == v {
		e--
	}
	if e < minExp {
		e = minExp
	}
	return e
}

func (h *histogram) observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketExp(v)]++
}

// HistBucket is one exported histogram bucket: the count of samples with
// value <= Le (and greater than the previous bucket's Le).
type HistBucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramJSON is the exported form of one histogram.
type HistogramJSON struct {
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	Buckets []HistBucket `json:"buckets"`
}

// MetricsJSON is the exported registry document.
type MetricsJSON struct {
	Schema     string                   `json:"schema"`
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]float64       `json:"gauges"`
	Histograms map[string]HistogramJSON `json:"histograms"`
}

// Snapshot returns the registry's current contents in exported form.
// Safe on a nil registry (returns an empty document).
func (m *Metrics) Snapshot() MetricsJSON {
	out := MetricsJSON{
		Schema:     MetricsSchema,
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramJSON{},
	}
	if m == nil {
		return out
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range m.counters {
		out.Counters[k] = v
	}
	for k, v := range m.gauges {
		out.Gauges[k] = v
	}
	for k, h := range m.hists {
		hj := HistogramJSON{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		exps := make([]int, 0, len(h.buckets))
		for e := range h.buckets {
			exps = append(exps, e)
		}
		sort.Ints(exps)
		for _, e := range exps {
			hj.Buckets = append(hj.Buckets, HistBucket{Le: math.Ldexp(1, e+1), Count: h.buckets[e]})
		}
		out.Histograms[k] = hj
	}
	return out
}

// MergeSnapshot folds an exported registry document into this registry
// under the given name prefix — the launcher's aggregation path for
// per-rank metrics shipped over the fabric ("rank1." + "tasks.run" →
// "rank1.tasks.run"). Histogram buckets fold by recovering the binary
// exponent from each bucket's boundary, so a merged histogram is
// indistinguishable from one observed locally. Safe on a nil registry.
func (m *Metrics) MergeSnapshot(prefix string, snap MetricsJSON) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, v := range snap.Counters {
		m.counters[prefix+name] += v
	}
	for name, v := range snap.Gauges {
		m.gauges[prefix+name] = v
	}
	for name, hj := range snap.Histograms {
		key := prefix + name
		h := m.hists[key]
		if h == nil {
			h = &histogram{buckets: make(map[int]int64)}
			m.hists[key] = h
		}
		if hj.Count > 0 {
			if h.count == 0 || hj.Min < h.min {
				h.min = hj.Min
			}
			if h.count == 0 || hj.Max > h.max {
				h.max = hj.Max
			}
		}
		h.count += hj.Count
		h.sum += hj.Sum
		for _, b := range hj.Buckets {
			// The export boundary is 2^(e+1) for bucket exponent e; Ilogb
			// inverts it exactly for the power-of-two boundaries the
			// registry emits.
			e := minExp
			if b.Le > 0 && !math.IsNaN(b.Le) && !math.IsInf(b.Le, 0) {
				e = math.Ilogb(b.Le) - 1
				if math.Ldexp(1, e+1) != b.Le {
					// Not a power of two (foreign document): bucket by the
					// boundary's magnitude instead of dropping the samples.
					e = bucketExp(b.Le)
				}
				if e < minExp {
					e = minExp
				}
			}
			h.buckets[e] += b.Count
		}
	}
}

// WriteMetrics writes the registry as indented JSON (map keys sort, so
// the output is deterministic for a given registry state).
func (m *Metrics) WriteMetrics(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Snapshot())
}
