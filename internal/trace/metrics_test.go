package trace

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestMetricsRoundTrip exercises the three instrument kinds and checks
// the export against the validator and the expected contents.
func TestMetricsRoundTrip(t *testing.T) {
	m := NewMetrics()
	m.Count("tasks.total", 3)
	m.Count("tasks.total", 2)
	m.Gauge("wire.bytes", 4096)
	for _, v := range []float64{0.001, 0.002, 0.5, 1.0, 7.5} {
		m.Observe("task.seconds", v)
	}

	snap := m.Snapshot()
	if snap.Schema != MetricsSchema {
		t.Errorf("schema %q", snap.Schema)
	}
	if snap.Counters["tasks.total"] != 5 {
		t.Errorf("counter = %d, want 5", snap.Counters["tasks.total"])
	}
	if snap.Gauges["wire.bytes"] != 4096 {
		t.Errorf("gauge = %v", snap.Gauges["wire.bytes"])
	}
	h := snap.Histograms["task.seconds"]
	if h.Count != 5 || h.Min != 0.001 || h.Max != 7.5 {
		t.Errorf("histogram summary: %+v", h)
	}
	if got := h.Sum; math.Abs(got-9.003) > 1e-12 {
		t.Errorf("histogram sum = %v", got)
	}

	var buf bytes.Buffer
	if err := m.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateMetrics(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exported metrics invalid: %v\n%s", err, buf.String())
	}
}

// TestHistogramBuckets pins the bucketing rule: a sample lands in the
// bucket whose upper boundary is the smallest power of two >= value.
func TestHistogramBuckets(t *testing.T) {
	m := NewMetrics()
	m.Observe("h", 1.0) // boundary sample: belongs to le=1
	m.Observe("h", 1.5) // le=2
	m.Observe("h", 2.0) // le=2
	m.Observe("h", 0)   // underflow bucket
	h := m.Snapshot().Histograms["h"]
	counts := map[float64]int64{}
	for _, b := range h.Buckets {
		counts[b.Le] = b.Count
	}
	if counts[1] != 1 || counts[2] != 2 {
		t.Errorf("bucket counts: %+v", h.Buckets)
	}
	var total int64
	for _, b := range h.Buckets {
		total += b.Count
	}
	if total != h.Count {
		t.Errorf("buckets sum to %d, count %d", total, h.Count)
	}
}

// TestMetricsConcurrent drives the registry from many goroutines; run
// under -race in CI.
func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Count("n", 1)
				m.Observe("v", float64(i))
			}
		}()
	}
	wg.Wait()
	snap := m.Snapshot()
	if snap.Counters["n"] != 4000 {
		t.Errorf("counter = %d, want 4000", snap.Counters["n"])
	}
	if snap.Histograms["v"].Count != 4000 {
		t.Errorf("histogram count = %d, want 4000", snap.Histograms["v"].Count)
	}
}

// TestValidateMetricsRejects feeds the validator malformed registries.
func TestValidateMetricsRejects(t *testing.T) {
	cases := map[string]string{
		"not json":     `[`,
		"wrong schema": `{"schema":"other/9","counters":{},"gauges":{},"histograms":{}}`,
		"no sections":  `{"schema":"pamg2d-metrics/1"}`,
		"bucket sum": `{"schema":"pamg2d-metrics/1","counters":{},"gauges":{},
			"histograms":{"h":{"count":3,"sum":1,"min":0,"max":1,"buckets":[{"le":1,"count":1}]}}}`,
		"unsorted buckets": `{"schema":"pamg2d-metrics/1","counters":{},"gauges":{},
			"histograms":{"h":{"count":2,"sum":1,"min":0,"max":1,"buckets":[{"le":2,"count":1},{"le":1,"count":1}]}}}`,
	}
	for name, in := range cases {
		if err := ValidateMetrics(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validator accepted %s", name, in)
		}
	}
}

// TestNilMetricsIsSafe: the disabled registry accepts writes and exports
// an empty, valid document.
func TestNilMetricsIsSafe(t *testing.T) {
	var m *Metrics
	m.Count("a", 1)
	m.Gauge("b", 2)
	m.Observe("c", 3)
	var buf bytes.Buffer
	if err := m.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateMetrics(&buf); err != nil {
		t.Fatalf("nil registry export invalid: %v", err)
	}
}
