package trace

// Prometheus text exposition (format 0.0.4) for the metrics registry.
// The JSON export (WriteMetrics) is the registry's native archival form;
// this encoder renders the same snapshot as a scrape surface: counters
// become `<name>_total`, gauges map directly, and the registry's
// power-of-two histograms become Prometheus histograms with cumulative
// buckets, a +Inf bucket, and the usual _sum/_count pair. Metric names
// are sanitized into the Prometheus alphabet under a `pamg2d_` prefix
// ("engine.run.seconds" → "pamg2d_engine_run_seconds"), and families
// emit in sorted name order so the output is deterministic for a given
// snapshot.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type a Prometheus text scrape endpoint
// serves.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promPrefix namespaces every exported metric.
const promPrefix = "pamg2d_"

// promName sanitizes a registry metric name into the Prometheus metric
// alphabet [a-zA-Z0-9_] under the pamg2d_ namespace.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(promPrefix) + len(name))
	b.WriteString(promPrefix)
	for i := 0; i < len(name); i++ {
		ch := name[i]
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z', ch == '_':
			b.WriteByte(ch)
		case ch >= '0' && ch <= '9':
			b.WriteByte(ch)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheusSnapshot renders one registry snapshot in Prometheus
// text exposition format.
func WritePrometheusSnapshot(w io.Writer, snap MetricsJSON) error {
	type family struct {
		name string
		emit func() error
	}
	var fams []family

	for name, v := range snap.Counters {
		pn := promName(name) + "_total"
		v := v
		fams = append(fams, family{pn, func() error {
			_, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, v)
			return err
		}})
	}
	for name, v := range snap.Gauges {
		pn := promName(name)
		v := v
		fams = append(fams, family{pn, func() error {
			_, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(v))
			return err
		}})
	}
	for name, h := range snap.Histograms {
		pn := promName(name)
		h := h
		fams = append(fams, family{pn, func() error {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
				return err
			}
			// The registry stores per-bucket counts; Prometheus buckets
			// are cumulative.
			var cum int64
			for _, b := range h.Buckets {
				cum += b.Count
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(b.Le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count); err != nil {
				return err
			}
			return nil
		}})
	}

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if err := f.emit(); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders the registry's current contents in Prometheus
// text exposition format. Safe on a nil registry (writes nothing).
func (m *Metrics) WritePrometheus(w io.Writer) error {
	return WritePrometheusSnapshot(w, m.Snapshot())
}
