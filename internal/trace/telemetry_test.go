package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// populate writes a recognizable mix of events onto a tracer: a root
// span, per-rank task spans with args, an instant, a counter sample, and
// a steal flow pair.
func populate(t *Tracer) {
	root := t.Begin(RootRank, CatStage, "stage")
	s0 := t.Begin(0, CatTask, "task-a")
	t.Instant(0, CatAudit, "checked", I("violations", 0))
	s0.End(F("cost", 1.5))
	s1 := t.Begin(1, CatTask, "task-b")
	t.FlowOut(1, 0, "steal")
	s1.End()
	sIn := t.Begin(0, CatTask, "stolen")
	t.FlowIn(0, 1, "steal")
	sIn.End()
	t.Counter(1, "queue", 3)
	root.End()
	t.Metrics().Count("tasks.run", 4)
	t.Metrics().Observe("task.seconds", 0.25)
}

// TestTelemetryWireRoundTrip: Export → AppendBinary → DecodeTelemetry
// must reproduce the snapshot exactly, metrics document included.
func TestTelemetryWireRoundTrip(t *testing.T) {
	tr := New(2)
	populate(tr)
	tel := tr.Export(1)
	if tel.Rank != 1 || tel.Ranks != 2 {
		t.Fatalf("export labeled rank %d/%d, want 1/2", tel.Rank, tel.Ranks)
	}
	if len(tel.Tracks) == 0 {
		t.Fatal("export dropped all tracks")
	}

	wire := tel.AppendBinary(nil)
	got, err := DecodeTelemetry(wire)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	a, _ := json.Marshal(tel)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatalf("roundtrip mismatch:\n sent %s\n got  %s", a, b)
	}

	// The image must be stable under re-encode (prefix-cache determinism).
	if again := got.AppendBinary(nil); !bytes.Equal(wire, again) {
		t.Fatal("re-encode of decoded telemetry differs")
	}
}

// TestTelemetryDecodeRejects: truncated or corrupt images must error,
// never panic or over-allocate.
func TestTelemetryDecodeRejects(t *testing.T) {
	tr := New(2)
	populate(tr)
	wire := tr.Export(0).AppendBinary(nil)

	if _, err := DecodeTelemetry(nil); err == nil {
		t.Error("empty image accepted")
	}
	for cut := 1; cut < len(wire); cut += 7 {
		if _, err := DecodeTelemetry(wire[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(wire))
		}
	}
	// A corrupt track count must be rejected by the cheap bound, not by
	// attempting the allocation.
	corrupt := append([]byte{}, wire...)
	corrupt[12], corrupt[13], corrupt[14], corrupt[15] = 0xff, 0xff, 0xff, 0xff
	if _, err := DecodeTelemetry(corrupt); err == nil {
		t.Error("absurd track count accepted")
	}
}

// mkTelemetry builds a snapshot by hand with exact timestamps.
func mkTelemetry(rank int, ts ...int64) *Telemetry {
	track := Track{Rank: rank}
	for i, v := range ts {
		track.Events = append(track.Events, Event{
			Name: "ev", Cat: CatTask, Ph: phSpan, TS: v, Dur: 10, Args: []Arg{I("i", i)},
		})
	}
	return &Telemetry{Rank: rank, Ranks: 3, Tracks: []Track{track},
		Metrics: (*Metrics)(nil).Snapshot()}
}

// TestMergedTraceDeterministic: the merged export must be byte-identical
// across repeated calls and independent of the order snapshots arrived
// in (rank order, not arrival order, decides).
func TestMergedTraceDeterministic(t *testing.T) {
	clocks := []RankClock{{Rank: 0}, {Rank: 1, OffsetNS: 100, RTTNS: 8}, {Rank: 2, OffsetNS: -50, RTTNS: 6}}
	t0 := mkTelemetry(0, 5, 1, 9)
	t1 := mkTelemetry(1, 3, 2)
	t2 := mkTelemetry(2, 70, 60)

	render := func(telems []*Telemetry) []byte {
		var buf bytes.Buffer
		if err := WriteMergedTrace(&buf, telems, clocks, "tcp"); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := render([]*Telemetry{t0, t1, t2})
	if got := render([]*Telemetry{t2, t0, t1}); !bytes.Equal(want, got) {
		t.Error("merged trace depends on snapshot arrival order")
	}
	if got := render([]*Telemetry{t1, t2, t0}); !bytes.Equal(want, got) {
		t.Error("merged trace not deterministic across permutations")
	}
	if _, err := ValidateTrace(bytes.NewReader(want)); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
}

// TestMergedTraceRebase: offsets shift each rank's timestamps onto the
// host clock, rebased values clamp at zero instead of going negative,
// and every track stays sorted — the monotonicity the validator enforces
// per (pid, tid).
func TestMergedTraceRebase(t *testing.T) {
	clocks := []RankClock{{Rank: 0}, {Rank: 1, OffsetNS: 1000}, {Rank: 2, OffsetNS: -500}}
	telems := []*Telemetry{
		mkTelemetry(0, 10, 20),
		mkTelemetry(1, 7, 3), // unsorted on purpose: merge must sort after rebase
		mkTelemetry(2, 100, 200, 300), // 100-500 < 0 → clamps to 0
	}
	var buf bytes.Buffer
	if err := WriteMergedTrace(&buf, telems, clocks, "tcp"); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("rebased trace invalid: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			Pid int     `json:"pid"`
			TS  float64 `json:"ts"` // Chrome trace ts is microseconds
		} `json:"traceEvents"`
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	byPid := map[int][]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.TS < 0 {
			t.Errorf("negative rebased timestamp %v on pid %d", ev.TS, ev.Pid)
		}
		byPid[ev.Pid] = append(byPid[ev.Pid], ev.TS)
	}
	// Rank 1 (pid 2): ts {7,3}ns + 1000ns → sorted {1.003, 1.007}µs.
	if got := byPid[2]; len(got) != 2 || got[0] != 1.003 || got[1] != 1.007 {
		t.Errorf("rank 1 rebase = %v, want [1.003 1.007]", got)
	}
	// Rank 2 (pid 3): every timestamp is below the -500ns offset's reach
	// of zero or clamps there; none may go negative.
	for _, ts := range byPid[3] {
		if ts < 0 {
			t.Errorf("rank 2 timestamp %v below zero after clamp", ts)
		}
	}
	// Metadata carries every rank's offset in string-keyed form.
	offs, ok := doc.Metadata["clock_offsets_ns"].(map[string]any)
	if !ok || offs["1"] != float64(1000) || offs["2"] != float64(-500) {
		t.Errorf("clock offset metadata wrong: %v", doc.Metadata)
	}
}

// TestPrometheusExport: the registry's text exposition must carry the
// pamg2d_ prefix, counter/_total and histogram conventions, and pass the
// package's own linter.
func TestPrometheusExport(t *testing.T) {
	m := NewMetrics()
	m.Count("engine.runs", 3)
	m.Gauge("engine.active", 2)
	for _, v := range []float64{0.1, 0.2, 0.4, 1.7, 300} {
		m.Observe("run.seconds", v)
	}

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE pamg2d_engine_runs_total counter",
		"pamg2d_engine_runs_total 3",
		"# TYPE pamg2d_engine_active gauge",
		"# TYPE pamg2d_run_seconds histogram",
		"pamg2d_run_seconds_bucket{le=\"+Inf\"} 5",
		"pamg2d_run_seconds_count 5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in exposition:\n%s", want, text)
		}
	}
	samples, err := ValidatePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, text)
	}
	if samples == 0 {
		t.Fatal("linter saw no samples")
	}

	// Byte-determinism across repeated exports of the same registry.
	var again bytes.Buffer
	if err := m.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("prometheus exposition not deterministic")
	}
}

// TestValidatePrometheusRejects: the linter must catch the corruption
// classes the exporter could regress into.
func TestValidatePrometheusRejects(t *testing.T) {
	cases := map[string]string{
		"bad name":            "pamg2d_bad-name 1\n",
		"bad value":           "pamg2d_x notanumber\n",
		"hist no inf":         "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 1\nh_count 2\n",
		"hist non-cumulative": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"hist inf-count skew": "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n",
	}
	for name, text := range cases {
		if _, err := ValidatePrometheus(strings.NewReader(text)); err == nil {
			t.Errorf("%s: linter accepted:\n%s", name, text)
		}
	}
	if _, err := ValidatePrometheus(strings.NewReader("")); err != nil {
		t.Errorf("empty exposition rejected: %v", err)
	}
}

// TestMergeSnapshotEquivalence: folding a snapshot into an empty registry
// under a prefix must reproduce the original histograms exactly — same
// buckets, same totals — so launcher-merged worker metrics are
// indistinguishable from locally-observed ones.
func TestMergeSnapshotEquivalence(t *testing.T) {
	src := NewMetrics()
	src.Count("tasks", 7)
	src.Gauge("depth", 4)
	for _, v := range []float64{0.001, 0.5, 2, 1024, 3.14159} {
		src.Observe("lat", v)
	}

	dst := NewMetrics()
	dst.MergeSnapshot("rank1.", src.Snapshot())
	got := dst.Snapshot()
	want := src.Snapshot()

	if got.Counters["rank1.tasks"] != 7 || got.Gauges["rank1.depth"] != 4 {
		t.Errorf("scalar fold wrong: %+v", got)
	}
	a, _ := json.Marshal(want.Histograms["lat"])
	b, _ := json.Marshal(got.Histograms["rank1.lat"])
	if !bytes.Equal(a, b) {
		t.Errorf("histogram fold differs:\n src %s\n dst %s", a, b)
	}

	// Folding twice accumulates.
	dst.MergeSnapshot("rank1.", src.Snapshot())
	if n := dst.Snapshot().Counters["rank1.tasks"]; n != 14 {
		t.Errorf("double fold counter = %d, want 14", n)
	}
	if h := dst.Snapshot().Histograms["rank1.lat"]; h.Count != 10 {
		t.Errorf("double fold histogram count = %d, want 10", h.Count)
	}
}

// TestTracerNow pins Now to the tracer's epoch: it must advance and stay
// consistent with recorded span timestamps, and a nil tracer reads zero.
func TestTracerNow(t *testing.T) {
	var nilTracer *Tracer
	if nilTracer.Now() != 0 {
		t.Error("nil tracer Now != 0")
	}
	tr := New(1)
	a := tr.Now()
	time.Sleep(time.Millisecond)
	b := tr.Now()
	if b <= a {
		t.Errorf("Now not advancing: %d then %d", a, b)
	}
}
