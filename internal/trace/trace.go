// Package trace is the run-observability subsystem: a low-overhead span
// recorder with per-rank buffers, a Chrome trace-event exporter, and a
// compact run-metrics registry. It makes the paper's scalability story
// (per-phase speedup, balancer behavior, rank skew) inspectable: every
// pipeline stage, per-rank task execution, steal transfer, audit check,
// and MPI send becomes a span or instant event on a rank-attributed
// track, and a run exports as a single JSON file that chrome://tracing
// and Perfetto load directly.
//
// A nil *Tracer is the disabled tracer: every method is safe to call on
// it and does nothing, so instrumented hot paths pay a single nil check
// (Enabled) when tracing is off. Recording is designed for the runtime's
// concurrency shape — each rank owns a buffer of chunked event arrays
// whose write cursor is an atomic counter, so concurrent writers on one
// rank (the balancer's mesher and communicator goroutines) reserve slots
// without taking a lock; a mutex is touched only on the rare chunk
// rollover. Export must happen after the run quiesces (the pipeline's
// world teardown provides the happens-before edge).
//
// Clocks are monotonic: timestamps are nanoseconds since New, read from
// time.Since, so spans never run backwards across wall-clock jumps.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// RootRank is the track of root-side (non-rank) work: the pipeline's
// stage spans. It exports as its own "process" ahead of the rank tracks.
const RootRank = -1

// Event categories. The exporter maps each category to a display thread
// within its rank's process: execution work (stages, tasks, audit checks,
// idle waits) on the "mesher" thread, communication (steal protocol, MPI
// sends) on the "comm" thread.
const (
	CatStage  = "stage"
	CatTask   = "task"
	CatAudit  = "audit"
	CatIdle   = "idle"
	CatSteal  = "steal"
	CatMPI    = "mpi"
	CatKernel = "kernel" // intra-rank parallel Delaunay insertion workers
	// CatRecover marks fault-tolerance work: the span from a rank death
	// being handled to the degraded phase's termination, and the instant
	// events of the dead rank's task re-queue.
	CatRecover = "recover"
)

// Arg is one numeric key/value attached to an event (task cost, bytes on
// wire, message tag). Args are numeric-only so recording never formats
// strings on the hot path.
type Arg struct {
	Key string
	Val float64
}

// F builds a float-valued event argument.
func F(key string, val float64) Arg { return Arg{Key: key, Val: val} }

// I builds an integer-valued event argument.
func I(key string, val int) Arg { return Arg{Key: key, Val: float64(val)} }

// event phases, mirroring the Chrome trace-event "ph" field.
const (
	phSpan    = 'X' // complete event (begin + duration)
	phInstant = 'i'
	phCounter = 'C'
	phFlowOut = 's' // flow start (the stolen task leaves the victim)
	phFlowIn  = 'f' // flow finish (it arrives at the thief)
)

// event is one recorded trace event; ts and dur are nanoseconds since the
// tracer's start.
type event struct {
	name string
	cat  string
	ph   byte
	ts   int64
	dur  int64
	id   uint64 // flow-event pairing id
	args []Arg
}

// chunkSize is the event capacity of one buffer chunk. Rollover takes the
// buffer mutex, so the common-path write stays a single atomic add.
const chunkSize = 512

type chunk struct {
	n      atomic.Int32
	events [chunkSize]event
}

// buffer is one track's event store: a list of fixed-size chunks with an
// atomic reservation cursor on the current chunk. Concurrent writers
// reserve distinct slots lock-free; only installing a fresh chunk locks.
type buffer struct {
	mu     sync.Mutex
	chunks []*chunk
	cur    atomic.Pointer[chunk]
}

func newBuffer() *buffer {
	b := &buffer{}
	c := &chunk{}
	b.chunks = append(b.chunks, c)
	b.cur.Store(c)
	return b
}

func (b *buffer) write(e event) {
	for {
		c := b.cur.Load()
		i := c.n.Add(1) - 1
		if int(i) < chunkSize {
			c.events[i] = e
			return
		}
		// Chunk full (the cursor may overshoot chunkSize under racing
		// writers; the export clamps). Install a fresh chunk and retry.
		b.mu.Lock()
		if b.cur.Load() == c {
			nc := &chunk{}
			b.chunks = append(b.chunks, nc)
			b.cur.Store(nc)
		}
		b.mu.Unlock()
	}
}

// len returns the number of events recorded so far.
func (b *buffer) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, c := range b.chunks {
		k := int(c.n.Load())
		if k > chunkSize {
			k = chunkSize
		}
		n += k
	}
	return n
}

// Tracer records one run's spans and events. Create with New; a nil
// Tracer is the disabled recorder (all methods no-op).
type Tracer struct {
	start  time.Time
	nranks int
	bufs   []*buffer // index rank+1: [0] is the root track
	open   atomic.Int64
	// Steal-flow sequence counters, indexed victim*nranks+thief. The
	// fabric delivers per-(source, destination, tag) in FIFO order, so the
	// n-th grant sent from a victim to a thief is the n-th grant the thief
	// receives from that victim: symmetric counters on both sides yield
	// matching flow ids without shipping the id in the message.
	flowOut []atomic.Uint64
	flowIn  []atomic.Uint64
	metrics *Metrics
}

// New creates a tracer for a run on the given number of ranks. Rank
// tracks are preallocated; events on out-of-range ranks land on the root
// track rather than being dropped.
func New(ranks int) *Tracer {
	if ranks < 1 {
		ranks = 1
	}
	t := &Tracer{start: time.Now(), nranks: ranks, metrics: NewMetrics()}
	t.bufs = make([]*buffer, ranks+1)
	for i := range t.bufs {
		t.bufs[i] = newBuffer()
	}
	t.flowOut = make([]atomic.Uint64, ranks*ranks)
	t.flowIn = make([]atomic.Uint64, ranks*ranks)
	return t
}

// Enabled reports whether the tracer records anything; it is the single
// nil check instrumented hot paths pay when tracing is off.
func (t *Tracer) Enabled() bool { return t != nil }

// Metrics returns the run-metrics registry attached to the tracer, or nil
// for the disabled tracer (the nil *Metrics is itself a no-op registry).
func (t *Tracer) Metrics() *Metrics {
	if t == nil {
		return nil
	}
	return t.metrics
}

// Ranks returns the number of worker-rank tracks.
func (t *Tracer) Ranks() int {
	if t == nil {
		return 0
	}
	return t.nranks
}

// OpenSpans returns the number of spans begun but not yet ended. A run
// that tears down cleanly — including the cancellation paths — leaves
// zero; the tests assert it.
func (t *Tracer) OpenSpans() int64 {
	if t == nil {
		return 0
	}
	return t.open.Load()
}

// Events returns the total number of recorded events across all tracks.
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	n := 0
	for _, b := range t.bufs {
		n += b.len()
	}
	return n
}

func (t *Tracer) now() int64 { return int64(time.Since(t.start)) }

// Now returns the tracer's current timestamp: monotonic nanoseconds since
// New, the time base every recorded event uses. Cross-process clock
// alignment (mpi.Cluster.MeasureOffsets) reads both sides of a ping
// exchange through this method so the estimated offsets are directly in
// trace-timestamp units. Returns 0 on a nil tracer.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return t.now()
}

func (t *Tracer) buf(rank int) *buffer {
	i := rank + 1
	if i < 0 || i >= len(t.bufs) {
		i = 0
	}
	return t.bufs[i]
}

// Span is an in-flight span handle returned by Begin. The zero Span (from
// a disabled tracer) is valid and End on it does nothing.
type Span struct {
	t    *Tracer
	rank int
	cat  string
	name string
	t0   int64
}

// Begin opens a span on rank's track (RootRank for root-side work). The
// span is recorded when End is called; a span never ended is never
// written, and OpenSpans counts it as leaked.
func (t *Tracer) Begin(rank int, cat, name string) Span {
	if t == nil {
		return Span{}
	}
	t.open.Add(1)
	return Span{t: t, rank: rank, cat: cat, name: name, t0: t.now()}
}

// End closes the span, attaching the given args.
func (s Span) End(args ...Arg) {
	if s.t == nil {
		return
	}
	s.t.open.Add(-1)
	end := s.t.now()
	dur := end - s.t0
	if dur < 0 {
		dur = 0
	}
	s.t.buf(s.rank).write(event{name: s.name, cat: s.cat, ph: phSpan, ts: s.t0, dur: dur, args: args})
}

// Instant records a zero-duration event on rank's track.
func (t *Tracer) Instant(rank int, cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.buf(rank).write(event{name: name, cat: cat, ph: phInstant, ts: t.now(), args: args})
}

// Counter records a named counter sample on rank's track; trace viewers
// render the series as a filled graph (queue depth over time).
func (t *Tracer) Counter(rank int, name string, val float64) {
	if t == nil {
		return
	}
	t.buf(rank).write(event{name: name, cat: CatSteal, ph: phCounter, ts: t.now(),
		args: []Arg{{Key: "value", Val: val}}})
}

func (t *Tracer) pair(from, to int) (int, bool) {
	if from < 0 || from >= t.nranks || to < 0 || to >= t.nranks {
		return 0, false
	}
	return from*t.nranks + to, true
}

func (t *Tracer) flowID(pair int, seq uint64) uint64 {
	return uint64(pair+1)<<32 | (seq & 0xffffffff)
}

// FlowOut records the start of a flow arrow from rank to dst (a stolen
// task leaving its victim). It must be called between the Begin and End
// of the enclosing span so viewers can bind the arrow to the slice. The
// matching FlowIn on dst pairs by (rank, dst) sequence number, relying on
// the fabric's per-pair FIFO ordering.
func (t *Tracer) FlowOut(rank, dst int, name string) {
	if t == nil {
		return
	}
	p, ok := t.pair(rank, dst)
	if !ok {
		return
	}
	seq := t.flowOut[p].Add(1)
	t.buf(rank).write(event{name: name, cat: CatSteal, ph: phFlowOut, ts: t.now(), id: t.flowID(p, seq)})
}

// FlowIn records the finish of a flow arrow on rank, started by src's
// matching FlowOut. Call it between the Begin and End of the receiving
// span.
func (t *Tracer) FlowIn(rank, src int, name string) {
	if t == nil {
		return
	}
	p, ok := t.pair(src, rank)
	if !ok {
		return
	}
	seq := t.flowIn[p].Add(1)
	t.buf(rank).write(event{name: name, cat: CatSteal, ph: phFlowIn, ts: t.now(), id: t.flowID(p, seq)})
}
