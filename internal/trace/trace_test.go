package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"strings"
	"sync"
	"testing"
)

// TestSpanRoundTrip records a small mixed run and checks the export is a
// valid trace with the expected tracks and event counts.
func TestSpanRoundTrip(t *testing.T) {
	tr := New(2)
	root := tr.Begin(RootRank, CatStage, "inviscid")

	s0 := tr.Begin(0, CatTask, "task/inviscid")
	s0.End(I("id", 7), F("cost", 120))
	tr.Instant(1, CatSteal, "request", I("victim", 0))

	// A steal: grant span with a flow out on rank 0, receive span with the
	// flow in on rank 1.
	g := tr.Begin(0, CatSteal, "grant")
	tr.FlowOut(0, 1, "steal")
	g.End(I("to", 1))
	rcv := tr.Begin(1, CatSteal, "stolen")
	tr.FlowIn(1, 0, "steal")
	rcv.End(I("from", 0))

	tr.Counter(0, "queue-cost", 42)
	root.End()

	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("OpenSpans = %d after ending every span", n)
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exported trace invalid: %v\n%s", err, buf.String())
	}
	// 4 spans + 1 instant + 1 counter + 2 flow events.
	if n != 8 {
		t.Errorf("validator saw %d events, want 8", n)
	}
	for _, want := range []string{`"rank 0"`, `"rank 1"`, `"root (pipeline)"`, `"mesher"`, `"comm"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("export missing metadata %s", want)
		}
	}
}

// TestNilTracerIsSafe locks in the disabled-tracer contract: every method
// no-ops on the nil receiver, including the metrics reached through it.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Begin(0, CatTask, "x")
	sp.End(I("id", 1))
	tr.Instant(0, CatMPI, "send")
	tr.Counter(0, "queue", 1)
	tr.FlowOut(0, 1, "steal")
	tr.FlowIn(1, 0, "steal")
	tr.Metrics().Count("n", 1)
	tr.Metrics().Gauge("g", 1)
	tr.Metrics().Observe("h", 1)
	if tr.OpenSpans() != 0 || tr.Events() != 0 || tr.Ranks() != 0 {
		t.Fatal("nil tracer recorded something")
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace(&buf); err != nil {
		t.Fatalf("nil tracer's export invalid: %v", err)
	}
}

// TestConcurrentWriters hammers one rank's buffer from many goroutines —
// the balancer's mesher and communicator share a track — and checks no
// event is lost and the export stays valid. Run under -race in CI.
func TestConcurrentWriters(t *testing.T) {
	tr := New(4)
	const goroutines = 8
	const perG = 700 // > chunkSize to force rollover under contention
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rank := g % 4
			for i := 0; i < perG; i++ {
				sp := tr.Begin(rank, CatTask, "task")
				sp.End(I("i", i))
			}
		}(g)
	}
	wg.Wait()
	if got, want := tr.Events(), goroutines*perG; got != want {
		t.Fatalf("recorded %d events, want %d", got, want)
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if n, err := ValidateTrace(&buf); err != nil || n != goroutines*perG {
		t.Fatalf("export: %d events, err %v", n, err)
	}
}

// TestTimestampsSortedPerTrack checks the exported order directly: spans
// recorded out of buffer order (End order != Begin order) still export
// with non-decreasing per-track timestamps.
func TestTimestampsSortedPerTrack(t *testing.T) {
	tr := New(1)
	outer := tr.Begin(0, CatTask, "outer")
	inner := tr.Begin(0, CatTask, "inner")
	inner.End()
	outer.End() // written after inner but starts earlier

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	last := -1.0
	seen := 0
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if e.TS < last {
			t.Fatalf("span %q at %v after %v", e.Name, e.TS, last)
		}
		last = e.TS
		seen++
	}
	if seen != 2 {
		t.Fatalf("exported %d spans, want 2", seen)
	}
}

// TestValidateTraceRejects feeds the validator malformed inputs.
func TestValidateTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"no traceEvents":  `{"displayTimeUnit":"ms"}`,
		"unknown phase":   `{"traceEvents":[{"name":"x","ph":"Q","ts":1,"pid":0,"tid":1}]}`,
		"backwards track": `{"traceEvents":[{"name":"a","ph":"i","ts":5,"pid":1,"tid":1},{"name":"b","ph":"i","ts":2,"pid":1,"tid":1}]}`,
		"unpaired flow":   `{"traceEvents":[{"name":"s","ph":"s","ts":1,"pid":1,"tid":2,"id":9}]}`,
		"negative dur":    `{"traceEvents":[{"name":"x","ph":"X","ts":1,"dur":-4,"pid":0,"tid":1}]}`,
	}
	for name, in := range cases {
		if _, err := ValidateTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validator accepted %s", name, in)
		}
	}
}

// External-artifact validation hooks: CI generates a trace + metrics pair
// with meshgen and re-runs these tests pointed at the files, so the
// shipped artifacts are checked by the same schema code as the unit
// exports.
var (
	traceFile   = flag.String("tracefile", "", "validate this Chrome trace-event file")
	metricsFile = flag.String("metricsfile", "", "validate this run-metrics JSON file")
)

func TestExternalTraceFile(t *testing.T) {
	if *traceFile == "" {
		t.Skip("no -tracefile given")
	}
	f, err := os.Open(*traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := ValidateTrace(f)
	if err != nil {
		t.Fatalf("%s: %v", *traceFile, err)
	}
	if n == 0 {
		t.Fatalf("%s: no events", *traceFile)
	}
	t.Logf("%s: %d events, valid", *traceFile, n)
}

func TestExternalMetricsFile(t *testing.T) {
	if *metricsFile == "" {
		t.Skip("no -metricsfile given")
	}
	f, err := os.Open(*metricsFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ValidateMetrics(f); err != nil {
		t.Fatalf("%s: %v", *metricsFile, err)
	}
}
