package trace

// Structural validators for the two exported artifacts. They are the
// schema the tests and the CI trace-artifact step check against: not a
// golden file, but the set of invariants any well-formed export satisfies
// (parseable JSON, known phases, per-track timestamp monotonicity, paired
// flow ids, schema-tagged metrics with consistent histograms).

import (
	"encoding/json"
	"fmt"
	"io"
)

// ValidateTrace checks that r holds a well-formed Chrome trace-event
// export: a JSON object with a traceEvents array whose events carry known
// phases, whose timestamps are non-decreasing within each (pid, tid)
// track, and whose flow starts and finishes pair up by id. It returns the
// number of non-metadata events alongside the first violation found.
func ValidateTrace(r io.Reader) (events int, err error) {
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
			ID   uint64  `json:"id"`
		} `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return 0, fmt.Errorf("trace: not a JSON trace object: %w", err)
	}
	if doc.TraceEvents == nil {
		return 0, fmt.Errorf("trace: missing traceEvents array")
	}
	lastTS := map[[2]int]float64{}
	flowOut := map[uint64]int{}
	flowIn := map[uint64]int{}
	for i, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			continue // metadata carries no timestamp
		case "X", "i", "C", "s", "f":
		default:
			return events, fmt.Errorf("trace: event %d (%q) has unknown phase %q", i, e.Name, e.Ph)
		}
		events++
		if e.TS < 0 {
			return events, fmt.Errorf("trace: event %d (%q) has negative timestamp %v", i, e.Name, e.TS)
		}
		if e.Ph == "X" && e.Dur < 0 {
			return events, fmt.Errorf("trace: span %d (%q) has negative duration %v", i, e.Name, e.Dur)
		}
		track := [2]int{e.PID, e.TID}
		if last, ok := lastTS[track]; ok && e.TS < last {
			return events, fmt.Errorf("trace: event %d (%q) goes backwards on track pid=%d tid=%d: %v after %v",
				i, e.Name, e.PID, e.TID, e.TS, last)
		}
		lastTS[track] = e.TS
		switch e.Ph {
		case "s":
			flowOut[e.ID]++
		case "f":
			flowIn[e.ID]++
		}
	}
	for id, n := range flowOut {
		if flowIn[id] != n {
			return events, fmt.Errorf("trace: flow id %d has %d starts but %d finishes", id, n, flowIn[id])
		}
	}
	for id, n := range flowIn {
		if flowOut[id] != n {
			return events, fmt.Errorf("trace: flow id %d has %d finishes but %d starts", id, n, flowOut[id])
		}
	}
	return events, nil
}

// ValidateMetrics checks that r holds a well-formed run-metrics registry
// export: the schema tag, the three sections present, and every histogram
// internally consistent (bucket counts sum to the sample count, bucket
// boundaries strictly increasing, min <= max).
func ValidateMetrics(r io.Reader) error {
	var doc MetricsJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("metrics: not a JSON registry: %w", err)
	}
	if doc.Schema != MetricsSchema {
		return fmt.Errorf("metrics: schema %q, want %q", doc.Schema, MetricsSchema)
	}
	if doc.Counters == nil || doc.Gauges == nil || doc.Histograms == nil {
		return fmt.Errorf("metrics: missing counters/gauges/histograms section")
	}
	for name, h := range doc.Histograms {
		if h.Count < 0 {
			return fmt.Errorf("metrics: histogram %q has negative count", name)
		}
		if h.Count > 0 && h.Min > h.Max {
			return fmt.Errorf("metrics: histogram %q has min %v > max %v", name, h.Min, h.Max)
		}
		var sum int64
		prev := 0.0
		for i, b := range h.Buckets {
			if i > 0 && b.Le <= prev {
				return fmt.Errorf("metrics: histogram %q bucket boundaries not increasing at %v", name, b.Le)
			}
			prev = b.Le
			sum += b.Count
		}
		if sum != h.Count {
			return fmt.Errorf("metrics: histogram %q buckets sum to %d, count is %d", name, sum, h.Count)
		}
	}
	return nil
}
