package trace

// Structural validators for the two exported artifacts. They are the
// schema the tests and the CI trace-artifact step check against: not a
// golden file, but the set of invariants any well-formed export satisfies
// (parseable JSON, known phases, per-track timestamp monotonicity, paired
// flow ids, schema-tagged metrics with consistent histograms).

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// ValidateTrace checks that r holds a well-formed Chrome trace-event
// export: a JSON object with a traceEvents array whose events carry known
// phases, whose timestamps are non-decreasing within each (pid, tid)
// track, and whose flow starts and finishes pair up by id. It returns the
// number of non-metadata events alongside the first violation found.
func ValidateTrace(r io.Reader) (events int, err error) {
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
			ID   uint64  `json:"id"`
		} `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return 0, fmt.Errorf("trace: not a JSON trace object: %w", err)
	}
	if doc.TraceEvents == nil {
		return 0, fmt.Errorf("trace: missing traceEvents array")
	}
	lastTS := map[[2]int]float64{}
	flowOut := map[uint64]int{}
	flowIn := map[uint64]int{}
	for i, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			continue // metadata carries no timestamp
		case "X", "i", "C", "s", "f":
		default:
			return events, fmt.Errorf("trace: event %d (%q) has unknown phase %q", i, e.Name, e.Ph)
		}
		events++
		if e.TS < 0 {
			return events, fmt.Errorf("trace: event %d (%q) has negative timestamp %v", i, e.Name, e.TS)
		}
		if e.Ph == "X" && e.Dur < 0 {
			return events, fmt.Errorf("trace: span %d (%q) has negative duration %v", i, e.Name, e.Dur)
		}
		track := [2]int{e.PID, e.TID}
		if last, ok := lastTS[track]; ok && e.TS < last {
			return events, fmt.Errorf("trace: event %d (%q) goes backwards on track pid=%d tid=%d: %v after %v",
				i, e.Name, e.PID, e.TID, e.TS, last)
		}
		lastTS[track] = e.TS
		switch e.Ph {
		case "s":
			flowOut[e.ID]++
		case "f":
			flowIn[e.ID]++
		}
	}
	for id, n := range flowOut {
		if flowIn[id] != n {
			return events, fmt.Errorf("trace: flow id %d has %d starts but %d finishes", id, n, flowIn[id])
		}
	}
	for id, n := range flowIn {
		if flowOut[id] != n {
			return events, fmt.Errorf("trace: flow id %d has %d finishes but %d starts", id, n, flowOut[id])
		}
	}
	return events, nil
}

var promNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// ValidatePrometheus lints a Prometheus text-exposition (0.0.4) document:
// legal metric names, every sample preceded by a TYPE declaration for its
// family, parseable sample values, and internally consistent histograms
// (cumulative bucket counts non-decreasing, a +Inf bucket present and
// equal to _count, _sum and _count present). It returns the number of
// sample lines alongside the first violation found.
func ValidatePrometheus(r io.Reader) (samples int, err error) {
	types := map[string]string{} // family -> declared type
	type histState struct {
		lastCum  int64
		inf      int64
		hasInf   bool
		hasSum   bool
		count    int64
		hasCount bool
	}
	hists := map[string]*histState{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				name, typ := fields[2], fields[3]
				if !promNameRE.MatchString(name) {
					return samples, fmt.Errorf("prom: line %d: illegal metric name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return samples, fmt.Errorf("prom: line %d: unknown type %q", lineNo, typ)
				}
				if prev, ok := types[name]; ok && prev != typ {
					return samples, fmt.Errorf("prom: line %d: family %q redeclared as %s (was %s)", lineNo, name, typ, prev)
				}
				types[name] = typ
				if typ == "histogram" && hists[name] == nil {
					hists[name] = &histState{}
				}
			}
			continue
		}

		// Sample line: name[{labels}] value [timestamp]
		name := line
		labels := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.IndexByte(line, '}')
			if j < i {
				return samples, fmt.Errorf("prom: line %d: unbalanced label braces", lineNo)
			}
			name = line[:i]
			labels = line[i+1 : j]
			line = name + " " + strings.TrimSpace(line[j+1:])
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return samples, fmt.Errorf("prom: line %d: sample without a value", lineNo)
		}
		if name == line {
			// No label braces: the metric name is the first field.
			name = fields[0]
		}
		if !promNameRE.MatchString(name) {
			return samples, fmt.Errorf("prom: line %d: illegal metric name %q", lineNo, name)
		}
		val, perr := strconv.ParseFloat(fields[1], 64)
		if perr != nil {
			return samples, fmt.Errorf("prom: line %d: value %q: %v", lineNo, fields[1], perr)
		}
		samples++

		// Resolve the family: histogram series use the base name with a
		// _bucket/_sum/_count suffix.
		family := name
		suffix := ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, s)
			if base != name && types[base] == "histogram" {
				family, suffix = base, s
				break
			}
		}
		typ, ok := types[family]
		if !ok {
			return samples, fmt.Errorf("prom: line %d: sample %q has no TYPE declaration", lineNo, name)
		}
		if typ != "histogram" {
			continue
		}
		h := hists[family]
		switch suffix {
		case "_bucket":
			le := ""
			for _, kv := range strings.Split(labels, ",") {
				if k, v, ok := strings.Cut(strings.TrimSpace(kv), "="); ok && k == "le" {
					le = strings.Trim(v, `"`)
				}
			}
			if le == "" {
				return samples, fmt.Errorf("prom: line %d: histogram bucket without le label", lineNo)
			}
			c := int64(val)
			if le == "+Inf" {
				h.inf, h.hasInf = c, true
			} else {
				if _, perr := strconv.ParseFloat(le, 64); perr != nil {
					return samples, fmt.Errorf("prom: line %d: bucket boundary %q: %v", lineNo, le, perr)
				}
				if c < h.lastCum {
					return samples, fmt.Errorf("prom: line %d: histogram %q bucket counts decrease (%d after %d)", lineNo, family, c, h.lastCum)
				}
				h.lastCum = c
			}
		case "_sum":
			h.hasSum = true
		case "_count":
			h.count, h.hasCount = int64(val), true
		default:
			return samples, fmt.Errorf("prom: line %d: bare sample %q for histogram family", lineNo, name)
		}
	}
	if err := sc.Err(); err != nil {
		return samples, fmt.Errorf("prom: %w", err)
	}
	for family, h := range hists {
		if !h.hasInf || !h.hasSum || !h.hasCount {
			return samples, fmt.Errorf("prom: histogram %q missing +Inf bucket, _sum, or _count", family)
		}
		if h.inf != h.count {
			return samples, fmt.Errorf("prom: histogram %q +Inf bucket %d != count %d", family, h.inf, h.count)
		}
		if h.lastCum > h.inf {
			return samples, fmt.Errorf("prom: histogram %q finite buckets exceed +Inf (%d > %d)", family, h.lastCum, h.inf)
		}
	}
	return samples, nil
}

// ValidateMetrics checks that r holds a well-formed run-metrics registry
// export: the schema tag, the three sections present, and every histogram
// internally consistent (bucket counts sum to the sample count, bucket
// boundaries strictly increasing, min <= max).
func ValidateMetrics(r io.Reader) error {
	var doc MetricsJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("metrics: not a JSON registry: %w", err)
	}
	if doc.Schema != MetricsSchema {
		return fmt.Errorf("metrics: schema %q, want %q", doc.Schema, MetricsSchema)
	}
	if doc.Counters == nil || doc.Gauges == nil || doc.Histograms == nil {
		return fmt.Errorf("metrics: missing counters/gauges/histograms section")
	}
	for name, h := range doc.Histograms {
		if h.Count < 0 {
			return fmt.Errorf("metrics: histogram %q has negative count", name)
		}
		if h.Count > 0 && h.Min > h.Max {
			return fmt.Errorf("metrics: histogram %q has min %v > max %v", name, h.Min, h.Max)
		}
		var sum int64
		prev := 0.0
		for i, b := range h.Buckets {
			if i > 0 && b.Le <= prev {
				return fmt.Errorf("metrics: histogram %q bucket boundaries not increasing at %v", name, b.Le)
			}
			prev = b.Le
			sum += b.Count
		}
		if sum != h.Count {
			return fmt.Errorf("metrics: histogram %q buckets sum to %d, count is %d", name, sum, h.Count)
		}
	}
	return nil
}
