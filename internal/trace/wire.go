package trace

// Cross-process telemetry: the serializable snapshot of one process's
// tracer (its event tracks plus its metrics registry) and the binary
// wire codec that ships it. In a multi-process run each worker rank
// exports its tracer with Export, sends the Telemetry to rank 0 over the
// fabric (mpi registers the codec under the core block), and the
// launcher merges every process's tracks into one Chrome trace with
// WriteMergedTrace.
//
// The encoding is the repo's usual length-checked binary framing for the
// event tracks — names, categories, timestamps, args — with the metrics
// registry embedded as one length-prefixed JSON document (its maps
// already have a canonical JSON form). Decoding validates every length
// against the remaining input and errors rather than panics: the bytes
// crossed a process boundary.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
)

// telemetryVersion tags the wire image so a mixed-version run fails with
// a clear error instead of a misparse.
const telemetryVersion = 1

// telemetryMaxTracks bounds the track count a decoder will accept; a
// track per rank plus the root track never approaches it.
const telemetryMaxTracks = 1 << 16

// Event is one exported trace event in a Telemetry snapshot: the
// serializable form of the recorder's internal event. TS and Dur are
// nanoseconds in the exporting tracer's time base (since its New).
type Event struct {
	Name string
	Cat  string
	Ph   byte
	TS   int64
	Dur  int64
	ID   uint64
	Args []Arg
}

// Track is one rank's event sequence. Rank is RootRank (-1) for the
// root-side track (stage spans), 0..Ranks-1 for worker tracks.
type Track struct {
	Rank   int
	Events []Event
}

// Telemetry is one process's complete observability snapshot: which rank
// the process hosted, the rank count of the run, every non-empty event
// track, and the metrics registry. It is the unit shipped to rank 0 and
// the unit WriteMergedTrace consumes.
type Telemetry struct {
	// Rank is the rank the exporting process hosted (the launcher's own
	// snapshot uses 0).
	Rank int
	// Ranks is the run's rank count, for track layout in the merge.
	Ranks int
	// Tracks holds the event tracks in export order: root first, then
	// rank 0..Ranks-1. Empty tracks are dropped on export.
	Tracks []Track
	// Metrics is the process's metrics-registry snapshot.
	Metrics MetricsJSON
}

// snapshot copies the buffer's recorded events into exported form. Like
// WriteTrace, it must only run after the traced work has quiesced.
func (b *buffer) snapshot() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Event
	for _, c := range b.chunks {
		k := int(c.n.Load())
		if k > chunkSize {
			k = chunkSize
		}
		for i := 0; i < k; i++ {
			e := c.events[i]
			out = append(out, Event{
				Name: e.name, Cat: e.cat, Ph: e.ph,
				TS: e.ts, Dur: e.dur, ID: e.id, Args: e.args,
			})
		}
	}
	return out
}

// Export snapshots the tracer as a shippable Telemetry for the process
// hosting hostRank. Empty tracks are omitted (a worker process records
// only its own rank's track and perhaps the root track). Safe on a nil
// tracer, which exports an empty snapshot.
func (t *Tracer) Export(hostRank int) *Telemetry {
	tel := &Telemetry{Rank: hostRank}
	if t == nil {
		tel.Metrics = (*Metrics)(nil).Snapshot()
		return tel
	}
	tel.Ranks = t.nranks
	for bi, b := range t.bufs {
		evs := b.snapshot()
		if len(evs) == 0 {
			continue
		}
		tel.Tracks = append(tel.Tracks, Track{Rank: bi - 1, Events: evs})
	}
	tel.Metrics = t.metrics.Snapshot()
	return tel
}

func appendTelemetryString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// AppendBinary appends tel's wire image to dst and returns the extended
// slice; it is the encode half of the telemetry codec.
func (tel *Telemetry) AppendBinary(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, telemetryVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(tel.Rank)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(tel.Ranks)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(tel.Tracks)))
	for _, tr := range tel.Tracks {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(tr.Rank)))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(tr.Events)))
		for _, e := range tr.Events {
			dst = appendTelemetryString(dst, e.Name)
			dst = appendTelemetryString(dst, e.Cat)
			dst = append(dst, e.Ph)
			dst = binary.LittleEndian.AppendUint64(dst, uint64(e.TS))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(e.Dur))
			dst = binary.LittleEndian.AppendUint64(dst, e.ID)
			dst = binary.LittleEndian.AppendUint16(dst, uint16(len(e.Args)))
			for _, a := range e.Args {
				dst = appendTelemetryString(dst, a.Key)
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.Val))
			}
		}
	}
	mj, err := json.Marshal(tel.Metrics)
	if err != nil {
		// MetricsJSON is maps of numbers and always marshals; an empty
		// document keeps the frame decodable if that ever changes.
		mj = []byte("{}")
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(mj)))
	return append(dst, mj...)
}

// telemetryCursor walks a telemetry body with bounds checks, accumulating
// the first error.
type telemetryCursor struct {
	b   []byte
	off int
	err error
}

func (c *telemetryCursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("trace: telemetry "+format, args...)
	}
}

func (c *telemetryCursor) u32() uint32 {
	if c.err != nil {
		return 0
	}
	if c.off+4 > len(c.b) {
		c.fail("truncated at offset %d (want u32)", c.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *telemetryCursor) u64() uint64 {
	if c.err != nil {
		return 0
	}
	if c.off+8 > len(c.b) {
		c.fail("truncated at offset %d (want u64)", c.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *telemetryCursor) u16() uint16 {
	if c.err != nil {
		return 0
	}
	if c.off+2 > len(c.b) {
		c.fail("truncated at offset %d (want u16)", c.off)
		return 0
	}
	v := binary.LittleEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v
}

func (c *telemetryCursor) byte() byte {
	if c.err != nil {
		return 0
	}
	if c.off >= len(c.b) {
		c.fail("truncated at offset %d (want byte)", c.off)
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *telemetryCursor) str() string {
	n := int(c.u32())
	if c.err != nil {
		return ""
	}
	if n < 0 || c.off+n > len(c.b) {
		c.fail("string of %d bytes at offset %d overruns body", n, c.off)
		return ""
	}
	s := string(c.b[c.off : c.off+n])
	c.off += n
	return s
}

// DecodeTelemetry parses one AppendBinary image back into a Telemetry;
// it is the decode half of the telemetry codec. Any structural defect is
// an error, never a panic.
func DecodeTelemetry(b []byte) (*Telemetry, error) {
	c := &telemetryCursor{b: b}
	if v := c.u32(); c.err == nil && v != telemetryVersion {
		return nil, fmt.Errorf("trace: telemetry version %d, want %d", v, telemetryVersion)
	}
	tel := &Telemetry{
		Rank:  int(int32(c.u32())),
		Ranks: int(int32(c.u32())),
	}
	ntracks := int(int32(c.u32()))
	if c.err != nil {
		return nil, c.err
	}
	if ntracks < 0 || ntracks > telemetryMaxTracks {
		return nil, fmt.Errorf("trace: telemetry claims %d tracks", ntracks)
	}
	for ti := 0; ti < ntracks; ti++ {
		tr := Track{Rank: int(int32(c.u32()))}
		nev := int(int32(c.u32()))
		if c.err != nil {
			return nil, c.err
		}
		// Every event costs at least 35 body bytes (two empty strings,
		// phase, ts/dur/id, arg count), so the claimed count is bounded by
		// the bytes that actually follow.
		if nev < 0 || nev > (len(b)-c.off)/35+1 {
			return nil, fmt.Errorf("trace: track %d claims %d events in %d bytes", ti, nev, len(b)-c.off)
		}
		tr.Events = make([]Event, 0, nev)
		for i := 0; i < nev; i++ {
			e := Event{
				Name: c.str(),
				Cat:  c.str(),
				Ph:   c.byte(),
				TS:   int64(c.u64()),
				Dur:  int64(c.u64()),
				ID:   c.u64(),
			}
			nargs := int(c.u16())
			if c.err != nil {
				return nil, c.err
			}
			for a := 0; a < nargs; a++ {
				e.Args = append(e.Args, Arg{Key: c.str(), Val: math.Float64frombits(c.u64())})
			}
			if c.err != nil {
				return nil, c.err
			}
			tr.Events = append(tr.Events, e)
		}
		tel.Tracks = append(tel.Tracks, tr)
	}
	mlen := int(int32(c.u32()))
	if c.err != nil {
		return nil, c.err
	}
	if mlen < 0 || c.off+mlen > len(b) {
		return nil, fmt.Errorf("trace: telemetry metrics of %d bytes overrun body", mlen)
	}
	if err := json.Unmarshal(b[c.off:c.off+mlen], &tel.Metrics); err != nil {
		return nil, fmt.Errorf("trace: telemetry metrics: %w", err)
	}
	c.off += mlen
	if c.off != len(b) {
		return nil, fmt.Errorf("trace: %d trailing bytes after telemetry", len(b)-c.off)
	}
	return tel, nil
}
