// Package viz renders meshes, PSLGs, boundary-layer rays and subdomain
// decompositions as standalone SVG files, so the paper's illustrative
// figures (normals, fans, decompositions, decoupled subdomains, resolved
// intersections) can be regenerated as images from this reproduction; see
// cmd/figures. Pure encoding/xml-free string building on the standard
// library.
package viz

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
)

// Style controls how a shape group is drawn. Zero values fall back to
// thin black strokes with no fill.
type Style struct {
	Stroke  string
	Width   float64 // in world units; 0 picks a hairline from the canvas size
	Fill    string
	Opacity float64 // 0 means fully opaque
}

func (s Style) attrs(hairline float64) string {
	stroke := s.Stroke
	if stroke == "" {
		stroke = "#000"
	}
	w := s.Width
	if w == 0 {
		w = hairline
	}
	fill := s.Fill
	if fill == "" {
		fill = "none"
	}
	a := fmt.Sprintf(`stroke=%q stroke-width="%g" fill=%q`, stroke, w, fill)
	if s.Opacity > 0 && s.Opacity < 1 {
		a += fmt.Sprintf(` opacity="%g"`, s.Opacity)
	}
	return a
}

type shape struct {
	kind  int // 0 polyline, 1 polygon, 2 circle
	pts   []geom.Point
	r     float64
	style Style
}

// Canvas accumulates shapes in world coordinates and writes them as one
// SVG with a viewBox fitted to the content (y-axis flipped to match
// mathematical orientation).
type Canvas struct {
	shapes []shape
	bb     geom.BBox
}

// New returns an empty canvas.
func New() *Canvas {
	return &Canvas{bb: geom.EmptyBBox()}
}

func (c *Canvas) extend(pts []geom.Point) {
	for _, p := range pts {
		c.bb = c.bb.Extend(p)
	}
}

// Polyline draws an open path through pts.
func (c *Canvas) Polyline(pts []geom.Point, st Style) {
	if len(pts) < 2 {
		return
	}
	c.extend(pts)
	c.shapes = append(c.shapes, shape{kind: 0, pts: pts, style: st})
}

// Segment draws one line segment.
func (c *Canvas) Segment(s geom.Segment, st Style) {
	c.Polyline([]geom.Point{s.A, s.B}, st)
}

// Polygon draws a closed path through pts.
func (c *Canvas) Polygon(pts []geom.Point, st Style) {
	if len(pts) < 3 {
		return
	}
	c.extend(pts)
	c.shapes = append(c.shapes, shape{kind: 1, pts: pts, style: st})
}

// Circle draws a circle of world radius r at p.
func (c *Canvas) Circle(p geom.Point, r float64, st Style) {
	c.extend([]geom.Point{geom.Pt(p.X-r, p.Y-r), geom.Pt(p.X+r, p.Y+r)})
	c.shapes = append(c.shapes, shape{kind: 2, pts: []geom.Point{p}, r: r, style: st})
}

// Points draws a small dot at each point, sized relative to the canvas.
func (c *Canvas) Points(pts []geom.Point, r float64, st Style) {
	for _, p := range pts {
		c.Circle(p, r, st)
	}
}

// Mesh draws every triangle edge once.
func (c *Canvas) Mesh(m *mesh.Mesh, st Style) {
	type ek struct{ a, b int32 }
	seen := make(map[ek]bool, 3*len(m.Triangles))
	for _, t := range m.Triangles {
		for e := 0; e < 3; e++ {
			a, b := t[e], t[(e+1)%3]
			if a > b {
				a, b = b, a
			}
			if seen[ek{a, b}] {
				continue
			}
			seen[ek{a, b}] = true
			c.Polyline([]geom.Point{m.Points[a], m.Points[b]}, st)
		}
	}
}

// Palette returns a categorical color for index i.
func Palette(i int) string {
	colors := []string{
		"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
		"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
	}
	return colors[((i%len(colors))+len(colors))%len(colors)]
}

// WriteSVG emits the canvas as an SVG document widthPx pixels wide (height
// follows the aspect ratio).
func (c *Canvas) WriteSVG(w io.Writer, widthPx int) error {
	if widthPx <= 0 {
		widthPx = 1000
	}
	bb := c.bb
	if bb.Empty() {
		bb = geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}
	}
	margin := 0.02 * (bb.Width() + bb.Height())
	if margin == 0 {
		margin = 1
	}
	bb = bb.Inflate(margin)
	hairline := (bb.Width() + bb.Height()) / 2 / float64(widthPx) * 1.2
	heightPx := int(float64(widthPx) * bb.Height() / math.Max(bb.Width(), 1e-300))
	if heightPx <= 0 {
		heightPx = widthPx
	}

	bw := bufio.NewWriterSize(w, 1<<20)
	// Flip the y-axis: world y maps to (maxY - y) in SVG space.
	fy := func(y float64) float64 { return bb.Max.Y - y + bb.Min.Y }
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="%g %g %g %g">`+"\n",
		widthPx, heightPx, bb.Min.X, bb.Min.Y, bb.Width(), bb.Height())
	for _, sh := range c.shapes {
		switch sh.kind {
		case 0, 1:
			tag := "polyline"
			if sh.kind == 1 {
				tag = "polygon"
			}
			fmt.Fprintf(bw, `<%s %s points="`, tag, sh.style.attrs(hairline))
			for i, p := range sh.pts {
				if i > 0 {
					fmt.Fprint(bw, " ")
				}
				fmt.Fprintf(bw, "%g,%g", p.X, fy(p.Y))
			}
			fmt.Fprintf(bw, `"/>`+"\n")
		case 2:
			p := sh.pts[0]
			fmt.Fprintf(bw, `<circle %s cx="%g" cy="%g" r="%g"/>`+"\n",
				sh.style.attrs(hairline), p.X, fy(p.Y), sh.r)
		}
	}
	fmt.Fprintln(bw, "</svg>")
	return bw.Flush()
}
