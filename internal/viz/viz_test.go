package viz

import (
	"bytes"
	"strings"
	"testing"

	"pamg2d/internal/geom"
	"pamg2d/internal/mesh"
)

func TestEmptyCanvas(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteSVG(&buf, 100); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatalf("not an svg: %q", out)
	}
}

func TestShapesAppear(t *testing.T) {
	c := New()
	c.Polyline([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}, Style{Stroke: "#f00"})
	c.Polygon([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)}, Style{Fill: "#0f0"})
	c.Circle(geom.Pt(0.5, 0.5), 0.1, Style{})
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf, 500); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<polyline", "<polygon", "<circle", "#f00", "#0f0"} {
		if !strings.Contains(out, want) {
			t.Errorf("svg missing %q", want)
		}
	}
}

func TestYAxisFlipped(t *testing.T) {
	// A point at the world TOP must map to a smaller SVG y than a point at
	// the world bottom.
	c := New()
	c.Circle(geom.Pt(0, 10), 0.1, Style{}) // world top
	c.Circle(geom.Pt(0, 0), 0.1, Style{})  // world bottom
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf, 100); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	top := strings.Index(out, `cy="`)
	if top < 0 {
		t.Fatal("no circle")
	}
	// First circle written is the world-top one; its cy must be near the
	// viewBox minimum. Parse the two cy values.
	var cys []string
	rest := out
	for {
		i := strings.Index(rest, `cy="`)
		if i < 0 {
			break
		}
		rest = rest[i+4:]
		j := strings.Index(rest, `"`)
		cys = append(cys, rest[:j])
	}
	if len(cys) != 2 {
		t.Fatalf("cys = %v", cys)
	}
	if !(cys[0] < cys[1]) { // string compare suffices: "0.x" < "9.x"
		t.Errorf("world-top circle cy %s not above world-bottom cy %s", cys[0], cys[1])
	}
}

func TestMeshEdgesDeduplicated(t *testing.T) {
	b := mesh.NewBuilder()
	b.AddTriangle(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1))
	b.AddTriangle(geom.Pt(0, 0), geom.Pt(1, 1), geom.Pt(0, 1))
	c := New()
	c.Mesh(b.Mesh(), Style{})
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf, 100); err != nil {
		t.Fatal(err)
	}
	// 2 triangles share one edge: 5 unique edges -> 5 polylines.
	if got := strings.Count(buf.String(), "<polyline"); got != 5 {
		t.Errorf("polylines = %d, want 5 (shared diagonal drawn once)", got)
	}
}

func TestPaletteCycles(t *testing.T) {
	if Palette(0) == Palette(1) {
		t.Error("adjacent palette entries must differ")
	}
	if Palette(3) != Palette(13) {
		t.Error("palette must cycle with period 10")
	}
	if Palette(-1) == "" {
		t.Error("negative index must still return a color")
	}
}
